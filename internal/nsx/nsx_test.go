package nsx

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
)

func TestGenerateReproducesTable3(t *testing.T) {
	rs := Generate(DefaultConfig())
	s := rs.Stats()
	if s.OpenFlowRules != 103302 {
		t.Fatalf("rules = %d, Table 3 says 103,302", s.OpenFlowRules)
	}
	if s.GeneveTunnels != 291 {
		t.Fatalf("tunnels = %d, Table 3 says 291", s.GeneveTunnels)
	}
	if s.VMs != 15 || s.IfacesPerVM != 2 {
		t.Fatalf("vms = %d x %d, Table 3 says 15 x 2", s.VMs, s.IfacesPerVM)
	}
	// Table 3 reports 40 tables; the generator's layout must land close
	// (the exact NSX table ids are proprietary).
	if s.OpenFlowTables < 28 || s.OpenFlowTables > 44 {
		t.Fatalf("tables = %d, want ~40", s.OpenFlowTables)
	}
	// Table 3 reports 31 matching fields; our flow model exposes fewer
	// named fields (NSX also matches on registers), so require a rich
	// spread rather than the exact count.
	if s.MatchingFields < 10 {
		t.Fatalf("matching fields = %d, want >= 10", s.MatchingFields)
	}
}

func TestPipelineThreePassWalk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetRules = 2000 // keep the test fast; structure is identical
	rs := Generate(cfg)
	pl := ofproto.NewPipeline()
	rs.Install(pl)

	// Pass 1: a VIF packet classifies into the egress pipeline and stops
	// at ct (the DPCT action ends translation).
	vifA, vifB := rs.VIFs[0], rs.VIFs[1]
	key := (&flow.Fields{
		InPort: vifA.Port, EthSrc: vifA.MAC, EthDst: vifB.MAC,
		EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP, IPTTL: 64,
		IP4Src: vifA.IP, IP4Dst: vifB.IP, TPDst: 8080, TPSrc: 2000,
	}).Pack()
	mf, err := pl.Translate(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 1 || mf.Actions[0].Type != ofproto.DPCT {
		t.Fatalf("pass-1 actions = %v", mf.Actions)
	}
	if mf.Actions[0].Zone != vifB.Zone {
		t.Fatalf("zone = %d, want %d", mf.Actions[0].Zone, vifB.Zone)
	}

	// Pass 2: recirculated with established state, the packet reaches L2
	// and outputs to vifB.
	f2 := key.Unpack()
	f2.RecircID = mf.Actions[0].RecircID
	f2.CtState = 0x05 // trk|est
	mf2, err := pl.Translate(f2.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if len(mf2.Actions) != 1 || mf2.Actions[0].Type != ofproto.DPOutput ||
		mf2.Actions[0].Port != vifB.Port {
		t.Fatalf("pass-2 actions = %v", mf2.Actions)
	}

	// Remote destination: the established pass emits tunnel push + uplink
	// output.
	remoteMAC := RemoteMAC(7)
	f3 := f2
	f3.EthDst = remoteMAC
	mf3, err := pl.Translate(f3.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if len(mf3.Actions) != 2 || mf3.Actions[0].Type != ofproto.DPTunnelPush ||
		mf3.Actions[1].Port != cfg.UplinkPort {
		t.Fatalf("remote actions = %v", mf3.Actions)
	}
	if mf3.Actions[0].Tunnel.RemoteIP != VTEPAddr(7) {
		t.Fatalf("tunnel remote = %s", mf3.Actions[0].Tunnel.RemoteIP)
	}

	// Inbound tunneled traffic: outer match pops the tunnel.
	outer := (&flow.Fields{
		InPort: cfg.UplinkPort, EthType: hdr.EtherTypeIPv4,
		IPProto: hdr.IPProtoUDP, TPDst: hdr.GenevePort,
		IP4Src: VTEPAddr(3), IP4Dst: cfg.LocalVTEP, TPSrc: 50000,
	}).Pack()
	mf4, err := pl.Translate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf4.Actions) != 1 || mf4.Actions[0].Type != ofproto.DPTunnelPop ||
		mf4.Actions[0].Port != cfg.TunnelVPort {
		t.Fatalf("inbound actions = %v", mf4.Actions)
	}

	// Post-decap pass: tunnel-source admission then ct.
	inner := (&flow.Fields{
		InPort: cfg.TunnelVPort, EthSrc: remoteMAC, EthDst: vifA.MAC,
		EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP,
		IP4Src: hdr.MakeIP4(10, 99, 0, 1), IP4Dst: vifA.IP,
		TunSrc: VTEPAddr(3), TunDst: cfg.LocalVTEP, TunVNI: 5000,
	}).Pack()
	mf5, err := pl.Translate(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf5.Actions) != 1 || mf5.Actions[0].Type != ofproto.DPCT {
		t.Fatalf("post-decap actions = %v", mf5.Actions)
	}
}

func TestUnknownVTEPDropped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetRules = 1500
	rs := Generate(cfg)
	pl := ofproto.NewPipeline()
	rs.Install(pl)

	inner := (&flow.Fields{
		InPort: cfg.TunnelVPort, EthType: hdr.EtherTypeIPv4,
		TunSrc: hdr.MakeIP4(203, 0, 113, 9), // not a known VTEP
	}).Pack()
	mf, err := pl.Translate(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 0 {
		t.Fatalf("unknown VTEP must drop, got %v", mf.Actions)
	}
}

func TestNewConnectionsWalkTheDFW(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetRules = 5000
	rs := Generate(cfg)
	pl := ofproto.NewPipeline()
	rs.Install(pl)

	vifA, vifB := rs.VIFs[0], rs.VIFs[1]
	key := (&flow.Fields{
		InPort: vifA.Port, EthDst: vifB.MAC, EthType: hdr.EtherTypeIPv4,
		IPProto: hdr.IPProtoTCP, IPTTL: 64, IP4Src: vifA.IP, IP4Dst: vifB.IP,
		TPSrc: 2000, TPDst: 8080,
		RecircID: 0,
	}).Pack()
	mf, err := pl.Translate(key)
	if err != nil {
		t.Fatal(err)
	}
	// New connection: recirc with trk|new walks the DFW chain and, not
	// matching any filler drop, reaches L2.
	f := key.Unpack()
	f.RecircID = mf.Actions[0].RecircID
	f.CtState = 0x03
	mf2, err := pl.Translate(f.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if len(mf2.Actions) != 1 || mf2.Actions[0].Port != vifB.Port {
		t.Fatalf("new-connection pass = %v", mf2.Actions)
	}
	// The DFW walk must have pinned the 5-tuple in the megaflow mask
	// (the firewall examined it), so the megaflow is narrow.
	if !mf2.Mask.Covers(flow.NewMaskBuilder().TPDst().Build()) {
		t.Fatal("DFW pass must unwildcard the destination port")
	}
}

func TestARPFloods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetRules = 1500
	rs := Generate(cfg)
	pl := ofproto.NewPipeline()
	rs.Install(pl)

	key := (&flow.Fields{
		InPort: rs.VIFs[0].Port, EthDst: hdr.Broadcast, EthType: hdr.EtherTypeARP,
	}).Pack()
	mf, err := pl.Translate(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != len(rs.VIFs) {
		t.Fatalf("broadcast outputs = %d, want %d", len(mf.Actions), len(rs.VIFs))
	}
}

func TestStatsString(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetRules = 1500
	if Generate(cfg).Stats().String() == "" {
		t.Fatal("empty stats string")
	}
}
