// Package nsx models the NSX agent of Section 4: it generates a
// production-grade OpenFlow rule set with the same shape and statistics as
// the paper's Table 3 (taken "from one of our hypervisors"), and installs
// it into an ofproto pipeline — either directly or over the OpenFlow wire.
//
// The pipeline reproduces the three-pass packet walk Section 5.1 describes:
//
//	pass 1: the outer lookup recognizes tunneled traffic and decapsulates
//	        (or, for local VIF traffic, classifies into the egress
//	        pipeline);
//	pass 2: the inner lookup runs the distributed firewall, handing the
//	        packet and zone to conntrack (which recirculates);
//	pass 3: the conntrack-state lookup picks the forwarding action: a
//	        local VIF, or a Geneve tunnel to a peer hypervisor.
package nsx

import (
	"fmt"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/tunnel"
)

// Table layout of the generated pipeline.
const (
	TableClassify  = 0  // in_port classification
	TableTunnelIn  = 5  // per-tunnel-source admission
	TableEgressACL = 10 // VIF egress pipeline entry (ct send)
	TableEgressCT  = 11 // post-conntrack egress decisions
	TableDFWBase   = 20 // distributed firewall rule tables (the bulk)
	numDFWTables   = 35 // tables 20..54 hold firewall rules (40 tables total)
	TableL2        = 60 // L2 forwarding by destination MAC
	TableOutput    = 70 // final output actions
)

// Config sizes the generated rule set. Defaults reproduce Table 3.
type Config struct {
	NumVMs       int // VMs on this hypervisor (two interfaces each)
	IfacesPerVM  int
	NumTunnels   int // Geneve tunnels to peer hypervisors
	TargetRules  int // total OpenFlow rules
	UplinkPort   uint32
	TunnelVPort  uint32 // virtual port packets appear on after tnl_pop
	FirstVIFPort uint32 // VIF datapath ports are FirstVIFPort..+NumVIFs-1
	LocalVTEP    hdr.IP4
}

// DefaultConfig reproduces the paper's Table 3 statistics.
func DefaultConfig() Config {
	return Config{
		NumVMs:       15,
		IfacesPerVM:  2,
		NumTunnels:   291,
		TargetRules:  103302,
		UplinkPort:   1,
		TunnelVPort:  100,
		FirstVIFPort: 200,
		LocalVTEP:    hdr.MakeIP4(172, 16, 0, 1),
	}
}

// VIF describes one VM interface.
type VIF struct {
	Port uint32
	MAC  hdr.MAC
	IP   hdr.IP4
	Zone uint16 // firewall zone
	VNI  uint32 // logical switch
}

// Ruleset is the generated configuration.
type Ruleset struct {
	Config Config
	Rules  []*ofproto.Rule
	VIFs   []VIF
	// RemoteVTEPs are the tunnel endpoints (one per tunnel).
	RemoteVTEPs []hdr.IP4
	// RemoteMACs maps remote workload MACs to their VTEP index.
	RemoteMACs map[hdr.MAC]int
}

// Stats summarizes the rule set the way Table 3 does.
type Stats struct {
	GeneveTunnels  int
	VMs            int
	IfacesPerVM    int
	OpenFlowRules  int
	OpenFlowTables int
	MatchingFields int
}

// VIFMAC returns the deterministic MAC of VIF i.
func VIFMAC(i int) hdr.MAC {
	return hdr.MAC{0x02, 0x10, 0x00, 0x00, byte(i >> 8), byte(i)}
}

// RemoteMAC returns the deterministic MAC of remote workload i.
func RemoteMAC(i int) hdr.MAC {
	return hdr.MAC{0x02, 0x20, 0x00, 0x00, byte(i >> 8), byte(i)}
}

// VTEPAddr returns remote VTEP i's IP.
func VTEPAddr(i int) hdr.IP4 {
	return hdr.MakeIP4(172, 16, 1+byte(i/250), byte(i%250)+1)
}

// Generate builds the rule set.
func Generate(cfg Config) *Ruleset {
	rs := &Ruleset{Config: cfg, RemoteMACs: make(map[hdr.MAC]int)}

	numVIFs := cfg.NumVMs * cfg.IfacesPerVM
	for i := 0; i < numVIFs; i++ {
		rs.VIFs = append(rs.VIFs, VIF{
			Port: cfg.FirstVIFPort + uint32(i),
			MAC:  VIFMAC(i),
			IP:   hdr.MakeIP4(10, 10, byte(i/250), byte(i%250)+1),
			Zone: uint16(1 + i/cfg.IfacesPerVM), // one zone per VM
			VNI:  uint32(5000 + i%4),            // a few logical switches
		})
	}
	for i := 0; i < cfg.NumTunnels; i++ {
		rs.RemoteVTEPs = append(rs.RemoteVTEPs, VTEPAddr(i))
		rs.RemoteMACs[RemoteMAC(i)] = i
	}

	add := func(r *ofproto.Rule) { rs.Rules = append(rs.Rules, r) }

	// --- Table 0: classification -------------------------------------------
	mIn := flow.NewMaskBuilder().InPort().Build()
	// Tunneled traffic arriving on the uplink: decapsulate.
	mTun := flow.NewMaskBuilder().InPort().EthType().IPProto().TPDst().Build()
	add(&ofproto.Rule{TableID: TableClassify, Priority: 200,
		Match: ofproto.NewMatch(flow.Fields{InPort: cfg.UplinkPort,
			EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoUDP, TPDst: hdr.GenevePort}, mTun),
		Actions: []ofproto.Action{ofproto.TunnelPop(cfg.TunnelVPort)}})
	// Non-tunnel uplink traffic: drop (underlay management handled by the
	// kernel stack via XDP pass, not the datapath).
	add(&ofproto.Rule{TableID: TableClassify, Priority: 10,
		Match:   ofproto.NewMatch(flow.Fields{InPort: cfg.UplinkPort}, mIn),
		Actions: []ofproto.Action{ofproto.Drop()}})
	// Decapsulated traffic: admit per tunnel source (pass 2 entry).
	add(&ofproto.Rule{TableID: TableClassify, Priority: 100,
		Match:   ofproto.NewMatch(flow.Fields{InPort: cfg.TunnelVPort}, mIn),
		Actions: []ofproto.Action{ofproto.GotoTable(TableTunnelIn)}})
	// Local VIF traffic: egress pipeline.
	for _, vif := range rs.VIFs {
		add(&ofproto.Rule{TableID: TableClassify, Priority: 100,
			Match:   ofproto.NewMatch(flow.Fields{InPort: vif.Port}, mIn),
			Actions: []ofproto.Action{ofproto.GotoTable(TableEgressACL)}})
	}

	// --- Table 5: tunnel admission, one rule per peer VTEP ------------------
	mVtep := flow.NewMaskBuilder().TunSrc().Build()
	for _, vtep := range rs.RemoteVTEPs {
		add(&ofproto.Rule{TableID: TableTunnelIn, Priority: 50,
			Match:   ofproto.NewMatch(flow.Fields{TunSrc: vtep}, mVtep),
			Actions: []ofproto.Action{ofproto.GotoTable(TableEgressACL)}})
	}

	// --- Table 10: send everything to conntrack in the VIF's zone -----------
	// Zone selection matches the destination (inbound) or source
	// (outbound) workload address; a catch-all uses zone 0.
	mDst := flow.NewMaskBuilder().EthType().IP4Dst(32).Build()
	for _, vif := range rs.VIFs {
		add(&ofproto.Rule{TableID: TableEgressACL, Priority: 80,
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4,
				IP4Dst: vif.IP}, mDst),
			Actions: []ofproto.Action{ofproto.CT(vif.Zone, true, TableEgressCT)}})
	}
	mEth := flow.NewMaskBuilder().EthType().Build()
	add(&ofproto.Rule{TableID: TableEgressACL, Priority: 5,
		Match:   ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4}, mEth),
		Actions: []ofproto.Action{ofproto.CT(0, true, TableEgressCT)}})
	// ARP within the logical switch floods to the L2 table directly.
	add(&ofproto.Rule{TableID: TableEgressACL, Priority: 90,
		Match:   ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeARP}, mEth),
		Actions: []ofproto.Action{ofproto.GotoTable(TableL2)}})

	// --- Table 11: post-conntrack decisions (pass 3 entry) ------------------
	mCt := flow.NewMaskBuilder().CtState(0x07).Build() // trk|new|est bits
	// Established or new (committed) traffic proceeds to the firewall
	// result: established skips the DFW, new traffic walks it.
	add(&ofproto.Rule{TableID: TableEgressCT, Priority: 100,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x05}, mCt), // trk|est
		Actions: []ofproto.Action{ofproto.GotoTable(TableL2)}})
	add(&ofproto.Rule{TableID: TableEgressCT, Priority: 90,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x03}, mCt), // trk|new
		Actions: []ofproto.Action{ofproto.GotoTable(TableDFWBase)}})
	mInv := flow.NewMaskBuilder().CtState(0x21).Build()
	add(&ofproto.Rule{TableID: TableEgressCT, Priority: 95,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x21}, mInv), // trk|inv
		Actions: []ofproto.Action{ofproto.Drop()}})

	// --- DFW tables: the 100k bulk ------------------------------------------
	// Each DFW table ends with a low-priority continue rule; new traffic
	// walks table-to-table (NSX compiles firewall sections similarly).
	for t := 0; t < numDFWTables; t++ {
		tableID := uint8(TableDFWBase + t)
		next := TableDFWBase + t + 1
		var cont ofproto.Action
		if t == numDFWTables-1 {
			cont = ofproto.GotoTable(TableL2)
		} else {
			cont = ofproto.GotoTable(uint8(next))
		}
		add(&ofproto.Rule{TableID: tableID, Priority: 1,
			Match:   ofproto.MatchAny(),
			Actions: []ofproto.Action{cont}})
	}

	// Filler firewall rules: highly specific 5-tuple drops spread across
	// the DFW tables — they do not match the experiment's traffic but
	// populate subtables exactly like NSX's expanded address sets do.
	// Special-case firewall rules exercising the wider field set NSX
	// matches on (Table 3 counts 31 distinct fields across all rules):
	// TCP flags, DSCP, TTL guards, fragments, VLAN, ICMP, ct_mark,
	// tunnel VNI, source ports, source MACs.
	special := []*ofproto.Rule{
		{TableID: TableDFWBase, Priority: 900, // SYN-flood guard
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4,
				IPProto: hdr.IPProtoTCP, TCPFlags: hdr.TCPSyn | hdr.TCPFin},
				flow.NewMaskBuilder().EthType().IPProto().TCPFlags(hdr.TCPSyn|hdr.TCPFin).Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase, Priority: 890, // DSCP-based policing
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4, IPTOS: 0xb8},
				flow.NewMaskBuilder().EthType().IPTOS().Build()),
			Actions: []ofproto.Action{ofproto.GotoTable(TableDFWBase + 1)}},
		{TableID: TableDFWBase, Priority: 880, // TTL-expired drop
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4, IPTTL: 0},
				flow.NewMaskBuilder().EthType().IPTTL().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase, Priority: 870, // later fragments
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4, IPFrag: 3},
				flow.NewMaskBuilder().EthType().IPFrag().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase + 1, Priority: 860, // tagged management VLAN
			Match: ofproto.NewMatch(flow.Fields{VLANTCI: flow.VLANPresent | 4000},
				flow.NewMaskBuilder().VLAN().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase + 1, Priority: 850, // ICMP echo policing
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4,
				IPProto: hdr.IPProtoICMP, ICMPType: hdr.ICMPEchoRequest},
				flow.NewMaskBuilder().EthType().IPProto().ICMP().Build()),
			Actions: []ofproto.Action{ofproto.Meter(1), ofproto.GotoTable(TableDFWBase + 2)}},
		{TableID: TableDFWBase + 2, Priority: 840, // ct_mark'd quarantined conns
			Match: ofproto.NewMatch(flow.Fields{CtMark: 0xdead},
				flow.NewMaskBuilder().CtMark().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase + 2, Priority: 830, // per-logical-switch policy
			Match: ofproto.NewMatch(flow.Fields{TunVNI: 5003},
				flow.NewMaskBuilder().TunVNI().Build()),
			Actions: []ofproto.Action{ofproto.GotoTable(TableDFWBase + 3)}},
		{TableID: TableDFWBase + 3, Priority: 820, // source-port service rule
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4,
				IPProto: hdr.IPProtoUDP, TPSrc: 53},
				flow.NewMaskBuilder().EthType().IPProto().TPSrc().Build()),
			Actions: []ofproto.Action{ofproto.GotoTable(TableDFWBase + 4)}},
		{TableID: TableDFWBase + 3, Priority: 810, // MAC-spoof guard
			Match: ofproto.NewMatch(flow.Fields{EthSrc: hdr.MAC{0xff, 0, 0, 0, 0, 1}},
				flow.NewMaskBuilder().EthSrc().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase + 4, Priority: 800, // ct_zone pin
			Match: ofproto.NewMatch(flow.Fields{CtZone: 999},
				flow.NewMaskBuilder().CtZone().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase + 4, Priority: 790, // IPv6 neighbor policy
			Match: ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv6,
				IPProto: hdr.IPProtoICMPv6},
				flow.NewMaskBuilder().EthType().IPProto().IPv6Src().Build()),
			Actions: []ofproto.Action{ofproto.Drop()}},
		{TableID: TableDFWBase + 5, Priority: 780, // tunnel-destination scoped
			Match: ofproto.NewMatch(flow.Fields{TunDst: cfg.LocalVTEP},
				flow.NewMaskBuilder().TunDst().Build()),
			Actions: []ofproto.Action{ofproto.GotoTable(TableDFWBase + 6)}},
	}
	for _, r := range special {
		add(r)
	}

	structural := len(rs.Rules)
	// Rules still to come after the filler: per-VIF L2, per-remote-MAC
	// L2, and the broadcast flood.
	postFiller := numVIFs + len(rs.RemoteMACs) + 1
	filler := cfg.TargetRules - structural - postFiller
	if filler < 0 {
		filler = 0
	}
	mFW := flow.NewMaskBuilder().EthType().IPProto().IP4Src(32).IP4Dst(32).TPDst().Build()
	for i := 0; i < filler; i++ {
		tableID := uint8(TableDFWBase + i%numDFWTables)
		proto := hdr.IPProtoTCP
		if i%3 == 0 {
			proto = hdr.IPProtoUDP
		}
		f := flow.Fields{
			EthType: hdr.EtherTypeIPv4,
			IPProto: proto,
			IP4Src:  hdr.MakeIP4(192, byte(10+i%40), byte(i/65536), byte(i/256)),
			IP4Dst:  hdr.MakeIP4(10, 10, byte(i%250), byte(1+i%200)),
			TPDst:   uint16(1024 + i%20000),
		}
		add(&ofproto.Rule{TableID: tableID, Priority: 500 + i%100,
			Match:   ofproto.NewMatch(f, mFW),
			Actions: []ofproto.Action{ofproto.Drop()}})
	}

	// --- L2 table: local VIFs and remote workloads ---------------------------
	mMac := flow.NewMaskBuilder().EthDst().Build()
	for i, vif := range rs.VIFs {
		add(&ofproto.Rule{TableID: TableL2, Priority: 50,
			Match:   ofproto.NewMatch(flow.Fields{EthDst: vif.MAC}, mMac),
			Actions: []ofproto.Action{ofproto.Output(vif.Port)}})
		_ = i
	}
	for mac, vtepIdx := range rs.RemoteMACs {
		add(&ofproto.Rule{TableID: TableL2, Priority: 50,
			Match: ofproto.NewMatch(flow.Fields{EthDst: mac}, mMac),
			Actions: []ofproto.Action{
				ofproto.SetTunnel(tunnel.Config{Kind: tunnel.Geneve,
					LocalIP:  cfg.LocalVTEP,
					RemoteIP: rs.RemoteVTEPs[vtepIdx],
					VNI:      5000}),
				ofproto.Output(cfg.UplinkPort),
			}})
	}
	// Broadcast (ARP) floods to all local VIFs.
	bcast := []ofproto.Action{}
	for _, vif := range rs.VIFs {
		bcast = append(bcast, ofproto.Output(vif.Port))
	}
	add(&ofproto.Rule{TableID: TableL2, Priority: 60,
		Match:   ofproto.NewMatch(flow.Fields{EthDst: hdr.Broadcast}, mMac),
		Actions: bcast})

	return rs
}

// Install adds every rule to the pipeline.
func (rs *Ruleset) Install(pl *ofproto.Pipeline) {
	for _, r := range rs.Rules {
		pl.AddRule(r)
	}
}

// Stats computes the Table 3 summary from the generated rules.
func (rs *Ruleset) Stats() Stats {
	tables := map[uint8]bool{}
	fields := map[string]bool{}
	for _, r := range rs.Rules {
		tables[r.TableID] = true
		for _, f := range maskFieldNames(r.Match.Mask) {
			fields[f] = true
		}
	}
	return Stats{
		GeneveTunnels:  len(rs.RemoteVTEPs),
		VMs:            rs.Config.NumVMs,
		IfacesPerVM:    rs.Config.IfacesPerVM,
		OpenFlowRules:  len(rs.Rules),
		OpenFlowTables: len(tables),
		MatchingFields: len(fields),
	}
}

// maskFieldNames lists the named fields a mask constrains (the "matching
// fields among all rules" statistic).
func maskFieldNames(m flow.Mask) []string {
	probes := []struct {
		name  string
		build func(*flow.MaskBuilder) *flow.MaskBuilder
	}{
		{"in_port", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.InPort() }},
		{"recirc_id", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.RecircID() }},
		{"eth_dst", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.EthDst() }},
		{"eth_src", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.EthSrc() }},
		{"eth_type", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.EthType() }},
		{"vlan", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.VLAN() }},
		{"ip_proto", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPProto() }},
		{"ip_tos", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPTOS() }},
		{"ip_ttl", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPTTL() }},
		{"ip_frag", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPFrag() }},
		{"ipv4_src", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IP4Src(1) }},
		{"ipv4_dst", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IP4Dst(1) }},
		{"ipv6_src", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPv6Src() }},
		{"ipv6_dst", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPv6Dst() }},
		{"tp_src", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TPSrc() }},
		{"tp_dst", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TPDst() }},
		{"tcp_flags", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TCPFlags(0xff) }},
		{"icmp", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.ICMP() }},
		{"ct_state", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.CtState(0x01) }},
		{"ct_zone", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.CtZone() }},
		{"ct_mark", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.CtMark() }},
		{"tun_id", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TunVNI() }},
		{"tun_src", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TunSrc() }},
		{"tun_dst", func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TunDst() }},
	}
	var out []string
	for _, p := range probes {
		probe := p.build(flow.NewMaskBuilder()).Build()
		// A field counts when the mask constrains any of its bits.
		if m.Intersects(probe) {
			out = append(out, p.name)
		}
	}
	return out
}

// String formats the stats like Table 3.
func (s Stats) String() string {
	return fmt.Sprintf("tunnels=%d vms=%d(x%d) rules=%d tables=%d fields=%d",
		s.GeneveTunnels, s.VMs, s.IfacesPerVM, s.OpenFlowRules, s.OpenFlowTables, s.MatchingFields)
}
