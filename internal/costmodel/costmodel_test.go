package costmodel

import (
	"testing"

	"ovsxdp/internal/sim"
)

// TestTable2LadderConsistency re-derives the Table 2 optimization ladder from
// the cost components and checks each rung lands near the paper's Mpps.
// This is the calibration contract the AF_XDP experiment depends on.
func TestTable2LadderConsistency(t *testing.T) {
	// Per-packet budget of the PMD thread on the fully optimized path
	// (O1..O5). Softirq-side work (XDP program, tx drain) runs on a
	// different CPU and must stay *below* this so the PMD is the
	// bottleneck — the ladder's deltas are all PMD-side.
	full := AFXDPRxDescriptor + AFXDPFillRefill + RxHashSoftware +
		ParseFlowKey + EMCHit + ExecActionOutput + PacketMetadataInit +
		AFXDPTxDescriptor +
		AFXDPTxKickSyscall/BatchSize +
		SpinlockPerAcquire/BatchSize + UmempoolOpBatched
	softirq := XDPDriverOverhead + XDPProgPass + AFXDPTxKernelDrain
	if softirq >= full {
		t.Errorf("softirq side (%d ns) must not be the bottleneck vs PMD (%d ns)", softirq, full)
	}
	mpps := func(perPkt sim.Time) float64 { return 1e3 / float64(perPkt) }

	cases := []struct {
		name    string
		perPkt  sim.Time
		want    float64 // paper Mpps
		slackLo float64
		slackHi float64
	}{
		{"O1..O5 (7.1 est)", full, 7.1, 0.85, 1.15},
		{"O1..O4 (6.6)", full + ChecksumCost(64), 6.6, 0.85, 1.15},
		{"O1..O3 (6.3)", full + ChecksumCost(64) + PacketMetadataMmap, 6.3, 0.85, 1.15},
		{"O1..O2 (6.0)", full + ChecksumCost(64) + PacketMetadataMmap + SpinlockPerAcquire, 6.0, 0.85, 1.15},
		{"O1 (4.8)", full + ChecksumCost(64) + PacketMetadataMmap + MutexLockPerPacket, 4.8, 0.85, 1.15},
		{"none (0.8)", full + ChecksumCost(64) + PacketMetadataMmap + MutexLockPerPacket + NonPMDPollGap/BatchSize, 0.8, 0.75, 1.25},
	}
	for _, c := range cases {
		got := mpps(c.perPkt)
		if got < c.want*c.slackLo || got > c.want*c.slackHi {
			t.Errorf("%s: model gives %.2f Mpps (%.0f ns/pkt), paper %.2f Mpps",
				c.name, got, float64(c.perPkt), c.want)
		}
	}
}

// TestTable5TaskCosts checks the XDP task cost decomposition against the
// paper's single-core rates.
func TestTable5TaskCosts(t *testing.T) {
	mpps := func(perPkt sim.Time) float64 { return 1e3 / float64(perPkt) }
	// Instruction-count estimates for the task programs built in
	// internal/xdp: ~8 insns for unconditional drop, ~45 for parse.
	taskA := XDPDriverOverhead + 8*EBPFPerInstruction
	taskB := XDPDriverOverhead + 45*EBPFPerInstruction + EBPFPacketTouch
	taskC := taskB + EBPFMapLookupHash
	taskD := taskB + 18*EBPFPerInstruction + XDPTxForward
	anchors := []struct {
		name string
		got  float64
		want float64
	}{
		{"A drop", mpps(taskA), 14},
		{"B parse+drop", mpps(taskB), 8.1},
		{"C parse+lookup+drop", mpps(taskC), 7.1},
		{"D parse+rewrite+fwd", mpps(taskD), 4.7},
	}
	for _, a := range anchors {
		if a.got < a.want*0.85 || a.got > a.want*1.15 {
			t.Errorf("task %s: model %.2f Mpps, paper %.2f Mpps", a.name, a.got, a.want)
		}
	}
}

func TestLineRate(t *testing.T) {
	// 64-byte frames on 10G: classic 14.88 Mpps.
	if pps := LineRatePPS(LinkRate10G, 64); pps < 14.7e6 || pps > 15.0e6 {
		t.Errorf("10G/64B line rate = %.2f Mpps, want ~14.88", pps/1e6)
	}
	// 1518-byte frames on 25G: ~2.03 Mpps.
	if pps := LineRatePPS(LinkRate25G, 1518); pps < 2.0e6 || pps > 2.1e6 {
		t.Errorf("25G/1518B line rate = %.2f Mpps, want ~2.03", pps/1e6)
	}
	// 64-byte frames on 25G: ~37.2 Mpps theoretical (the paper's TRex
	// offered 33 Mpps, slightly below line rate).
	if pps := LineRatePPS(LinkRate25G, 64); pps < 33e6 || pps > 38e6 {
		t.Errorf("25G/64B line rate = %.2f Mpps", pps/1e6)
	}
}

func TestTransmitTime(t *testing.T) {
	tt := TransmitTime(LinkRate10G, 64)
	// (64+24)*8 bits / 10Gbps = 70.4 ns
	if tt < 65 || tt > 75 {
		t.Errorf("64B @10G transmit time = %v, want ~70ns", tt)
	}
	big := TransmitTime(LinkRate10G, 1518)
	if big <= tt {
		t.Error("larger frames must take longer to serialize")
	}
}

func TestSMTContention(t *testing.T) {
	base := sim.Time(1000)
	if got := SMTContention(base, 1); got != base {
		t.Errorf("n=1 must not inflate: %v", got)
	}
	prev := base
	for n := 2; n <= 16; n++ {
		got := SMTContention(base, n)
		if got < prev {
			t.Errorf("contention must be monotone in n: n=%d got %v < %v", n, got, prev)
		}
		prev = got
	}
	// At n=12 the factor should roughly match the Table 4 calibration:
	// per-packet kernel cost inflating ~3.75x at full fan-out.
	if got := SMTContention(base, 12); got < 3500 || got > 4100 {
		t.Errorf("n=12 contention = %v, want ~3750", got)
	}
}

func TestChecksumAndCopyCosts(t *testing.T) {
	if ChecksumCost(64) <= 0 {
		t.Error("checksum of 64B must cost something")
	}
	if ChecksumCost(1500) <= ChecksumCost(64) {
		t.Error("checksum cost must grow with payload")
	}
	if CopyCost(0) != 0 {
		t.Error("copying nothing is free")
	}
	if CopyCost(1) == 0 {
		t.Error("copying one byte must not be free")
	}
	if CopyCost(1500) <= CopyCost(64) {
		t.Error("copy cost must grow with size")
	}
}

// TestTapAmortization cross-checks Section 3.3's numbers: full-opt AF_XDP at
// ~141 ns/pkt dropping to ~1.3 Mpps when each packet pays the amortized tap
// penalty.
func TestTapAmortization(t *testing.T) {
	perPkt := sim.Time(141) + TapPerPacketAmortized
	mpps := 1e3 / float64(perPkt)
	if mpps < 1.1 || mpps > 1.5 {
		t.Errorf("tap-path rate = %.2f Mpps, paper ~1.3", mpps)
	}
}
