// Package costmodel holds the calibrated virtual-time costs that the
// simulated datapaths charge for each operation.
//
// Every constant is expressed in virtual nanoseconds (sim.Time) and is
// derived from anchor numbers the paper itself reports:
//
//   - Table 2's optimization ladder fixes the per-packet cost of the
//     fully-optimized AF_XDP path (7.1 Mpps -> 141 ns/pkt) and the deltas
//     attributable to each optimization O1..O5.
//   - Section 3.3 fixes the tap-device system call at 2 us and the observed
//     amortized per-packet penalty (7.1 Mpps -> 1.3 Mpps => ~630 ns/pkt).
//   - Table 4 fixes the CPU-category split per datapath at 1,000 flows.
//   - Table 5 fixes the per-instruction and per-map-op costs of XDP
//     programs (14 / 8.1 / 7.1 / 4.7 Mpps for tasks A-D).
//   - Figures 10 and 11 fix the latency bases and jitter magnitudes.
//
// The derivations appear as comments next to each constant. Absolute values
// are not the reproduction target (our substrate is a simulator, not the
// authors' Xeon testbed); the orderings and ratios between configurations
// are.
package costmodel

import "ovsxdp/internal/sim"

// ---------------------------------------------------------------------------
// Userspace datapath per-packet costs (Table 2 ladder).
//
// Fully optimized (O1+O2+O3+O4+O5) the paper measures 7.1 Mpps for 64-byte
// single-flow forwarding between a physical NIC and OVS userspace, i.e.
// ~141 ns/packet. We decompose that budget into the components below; the
// Table 2 experiment then *removes* optimizations one at a time, which adds
// back the corresponding costs.
// ---------------------------------------------------------------------------
const (
	// XDPProgPass is the cost of the minimal XDP program that redirects
	// every packet into the AF_XDP socket (bpf_redirect_map into an
	// xskmap), charged to softirq context.
	XDPProgPass sim.Time = 24

	// AFXDPRxDescriptor covers popping one descriptor from the XSK rx
	// ring, translating its umem address, and attaching the buffer to a
	// dp_packet.
	AFXDPRxDescriptor sim.Time = 20

	// AFXDPFillRefill is the amortized per-packet cost of pushing fresh
	// buffers onto the fill ring (done once per batch).
	AFXDPFillRefill sim.Time = 6

	// AFXDPTxDescriptor covers reserving and filling one descriptor on
	// the XSK tx ring, including the umem copy-mode address handling.
	AFXDPTxDescriptor sim.Time = 20

	// AFXDPTxKickSyscall is the sendto() wakeup that tells the kernel to
	// drain the tx ring. It is issued once per transmitted batch, so its
	// per-packet share is this divided by the batch size.
	AFXDPTxKickSyscall sim.Time = 430

	// AFXDPTxKernelDrain is the kernel-side (softirq) work to actually
	// transmit one descriptor from the XSK tx ring out the NIC. It runs
	// on the softirq CPU, concurrently with the PMD thread, so it only
	// bounds throughput if the softirq side becomes the bottleneck.
	AFXDPTxKernelDrain sim.Time = 46

	// ParseFlowKey is the flow-key extraction (miniflow_extract analog):
	// walking Ethernet/IP/L4 headers of a packet already in cache.
	ParseFlowKey sim.Time = 22

	// EMCHit is an exact-match-cache hit: one hash and one key compare.
	EMCHit sim.Time = 12

	// EMCMissProbe is the wasted EMC probe that precedes a megaflow
	// lookup when the EMC misses.
	EMCMissProbe sim.Time = 10

	// SMCHit is a signature-match-cache hit: one 4-way bucket probe (a
	// single cache line of 16-bit signatures), the indirection-table load,
	// and the mandatory verification of the candidate megaflow against the
	// packet's key (mask application + key compare — the same work as one
	// dpcls subtable probe minus its hash). That puts it between an EMC
	// hit and a single-subtable dpcls lookup, matching the SMC commit
	// message's "slightly slower than EMC, much faster than the megaflow
	// cache at high flow counts".
	SMCHit sim.Time = 25

	// SMCMissProbe is the wasted SMC bucket probe preceding a dpcls
	// lookup when the SMC misses: one cache line, no verification.
	SMCMissProbe sim.Time = 8

	// SMCInsert is writing one (signature, index) pair after a dpcls or
	// upcall resolution, including the occasional indirection-table
	// registration, amortized. Paid only when the SMC is enabled, which is
	// why smc-enable=false (the OVS default) costs nothing.
	SMCInsert sim.Time = 8

	// BatchedFlowUpdate is the per-packet cost of appending to an existing
	// per-flow batch during batched classification instead of running a
	// full cache probe (dp_netdev's packet_batch_per_flow_update): a
	// pointer store and a count increment.
	BatchedFlowUpdate sim.Time = 4

	// DpclsLookupPerSubtable is the cost per tuple-space subtable probed
	// during a megaflow (dpcls) lookup: mask application, hash, compare.
	DpclsLookupPerSubtable sim.Time = 29

	// ExecActionOutput covers executing a trivial action list that
	// forwards to one port.
	ExecActionOutput sim.Time = 22

	// ExecActionSimple is one lightweight header-rewrite action (VLAN
	// push/pop, MAC rewrite, TTL decrement).
	ExecActionSimple sim.Time = 6

	// PollIdleIteration is one empty busy-poll loop iteration of a PMD
	// thread across its receive queues.
	PollIdleIteration sim.Time = 600

	// PacketMetadataInit is the per-packet dp_packet metadata
	// initialization when metadata is *pre-allocated* (optimization O4).
	PacketMetadataInit sim.Time = 4

	// PacketMetadataMmap is the additional amortized per-packet cost of
	// allocating dp_packet metadata with mmap when O4 is disabled
	// (Table 2: 6.3 -> 6.6 Mpps => ~7 ns/pkt).
	PacketMetadataMmap sim.Time = 7

	// ChecksumPerByte is the software checksum cost per payload byte.
	// Table 2's O5 estimates checksum offload is worth 6.6 -> 7.1 Mpps
	// on 64-byte packets => ~10.7 ns/pkt => ~0.167 ns/byte.
	// We keep integer math by expressing it per 8 bytes.
	ChecksumPer8Bytes sim.Time = 1 // ~0.125 ns/byte, reviewed vs O5 delta

	// MutexLockPerPacket is the per-packet cost of guarding umempool
	// operations with a pthread mutex (possible context switch; the
	// paper saw ~5% CPU in pthread_mutex_lock). Table 2: disabling O2
	// costs 6.0 -> 4.8 Mpps => ~42 ns/pkt.
	MutexLockPerPacket sim.Time = 42

	// SpinlockPerAcquire is an uncontended spinlock acquire/release pair.
	// With per-packet locking (O3 disabled) this is paid per packet
	// (Table 2: 6.3 -> 6.0 Mpps => ~8 ns/pkt); with batched locking it
	// is paid once per batch.
	SpinlockPerAcquire sim.Time = 8

	// UmempoolOpBatched is the residual per-packet umempool bookkeeping
	// cost once locking is batched.
	UmempoolOpBatched sim.Time = 2

	// NonPMDPollGap models the datapath *without* dedicated PMD threads
	// (O1 disabled): the shared main thread interleaves packet polling
	// with OpenFlow/OVSDB work and sleeps in poll(), so each batch
	// additionally pays for a poll() system call, a wakeup, and a
	// scheduler delay. Table 2: 0.8 Mpps vs 4.8 Mpps with PMD
	// => ~1040 ns/pkt extra, i.e. ~33 us per 32-packet batch.
	NonPMDPollGap sim.Time = 33 * sim.Microsecond

	// InterruptModeWakeup is the per-interrupt cost (irq + NAPI schedule
	// + userspace wakeup) when AF_XDP is used in interrupt-driven mode
	// rather than busy polling (Figure 8a's "interrupt" bar).
	InterruptModeWakeup sim.Time = 5200

	// ColdFlowCacheMiss is the extra cost of touching per-flow state that
	// is not resident in the CPU data cache. It applies when the active
	// flow count is large (the 1,000-flow columns of Figure 9): each
	// packet's EMC/megaflow entry and conntrack entry are cold.
	ColdFlowCacheMiss sim.Time = 35
)

// ---------------------------------------------------------------------------
// DPDK datapath (Section 2.2.1 baseline).
//
// Table 4 shows DPDK P2P spends 1.0 hyperthread entirely in userspace.
// OVS-DPDK forwarding at 64B is reported around 11-12 Mpps per core in the
// figure 9(a) regime => ~86 ns/pkt. DPDK shares the ParseFlowKey/EMC/action
// costs with the AF_XDP path (it runs the same OVS userspace datapath); only
// packet I/O differs.
// ---------------------------------------------------------------------------
const (
	// DPDKRxDescriptor is the PMD rx burst per-packet cost (no kernel
	// involvement, direct DMA into hugepage mbufs).
	DPDKRxDescriptor sim.Time = 14

	// DPDKTxDescriptor is the PMD tx burst per-packet cost.
	DPDKTxDescriptor sim.Time = 14

	// DPDKMbufAlloc is the amortized mbuf allocate/free pair from the
	// per-core mempool cache.
	DPDKMbufAlloc sim.Time = 5
)

// ---------------------------------------------------------------------------
// Kernel datapath and network stack (Section 2 baseline).
// ---------------------------------------------------------------------------
const (
	// SkbAlloc is allocating and initializing a socket buffer.
	SkbAlloc sim.Time = 80

	// KernelOVSLookup is the in-kernel OVS flow table lookup (masked
	// hash table walk) for a warm flow.
	KernelOVSLookup sim.Time = 150

	// KernelOVSActions is executing a simple output action in-kernel.
	KernelOVSActions sim.Time = 75

	// KernelDriverRx is NAPI poll + DMA sync + descriptor handling per
	// packet in the NIC driver.
	KernelDriverRx sim.Time = 130

	// KernelDriverTx is queueing one packet to the NIC tx ring from
	// kernel context.
	KernelDriverTx sim.Time = 110

	// KernelStackRxPerPacket is IP + transport receive processing of one
	// packet through the host stack (excluding socket delivery).
	KernelStackRxPerPacket sim.Time = 260

	// KernelStackTxPerPacket is transport + IP transmit processing.
	KernelStackTxPerPacket sim.Time = 240

	// KernelPerByteCopy is the per-byte cost of copying packet payload
	// (user<->kernel copies, skb copies). ~16 bytes/ns memcpy plus
	// cache effects => 0.0625 ns/byte; expressed per 16 bytes.
	KernelPerByte16 sim.Time = 1

	// SyscallBase is the fixed cost of entering and leaving the kernel
	// (read/write/sendmsg on a hot path).
	SyscallBase sim.Time = 480

	// TapSendSyscall is the sendto() pushing one packet from OVS
	// userspace into a tap device. Section 3.3 measures 2 us; with the
	// batching OVS applies the amortized penalty observed is ~630 ns/pkt
	// (7.1 -> 1.3 Mpps). We charge the raw syscall per batch-of-3 writes
	// plus per-packet copy costs, which lands in the same place.
	TapSendSyscall sim.Time = 2 * sim.Microsecond

	// TapPerPacketAmortized is the effective additional per-packet cost
	// of the tap path in the userspace datapath after batching.
	TapPerPacketAmortized sim.Time = 630

	// VethCrossing is handing a packet across a veth pair between
	// namespaces (no data copy, reference move + netif_rx).
	VethCrossing sim.Time = 180

	// ContextSwitch is a voluntary context switch (futex wakeup,
	// scheduler, cache refill headroom).
	ContextSwitch sim.Time = 1300

	// InterruptLatencyMean is the mean delay from NIC DMA completion to
	// the softirq handler running, in interrupt mode with typical
	// adaptive coalescing.
	InterruptLatencyMean sim.Time = 4 * sim.Microsecond

	// SMTContentionNum/Den express how per-packet kernel costs inflate
	// when many hyperthreads process packets concurrently (shared
	// physical cores, shared cache and memory bandwidth). Effective
	// cost = base * (1 + (n-1)/n * Num/Den). Calibrated so that at full
	// 12-thread fan-out per-packet cost inflates ~3.9x, which reproduces
	// Table 4's kernel P2P row: 9.7 softirq hyperthreads sustaining
	// ~4.8 Mpps.
	SMTContentionNum = 30
	SMTContentionDen = 10
)

// ---------------------------------------------------------------------------
// Virtio / vhostuser (Section 3.3).
// ---------------------------------------------------------------------------
const (
	// VhostRingOp is enqueue or dequeue of one descriptor on a vhostuser
	// ring (shared memory, no kernel crossing).
	VhostRingOp sim.Time = 55

	// VhostPerByte16 is the per-16-byte copy cost into/out of guest
	// memory.
	VhostPerByte16 sim.Time = 1

	// VirtioGuestRx is guest-side virtio-net receive processing per
	// packet (charged to the guest category).
	VirtioGuestRx sim.Time = 160

	// VirtioGuestTx is guest-side virtio-net transmit processing.
	VirtioGuestTx sim.Time = 150

	// GuestStackPerPacket is the guest kernel's stack traversal cost per
	// packet (reflector application in PVP, netperf/iperf in the TCP
	// tests).
	GuestStackPerPacket sim.Time = 420

	// QemuTapRelay is the extra hop through the QEMU process when a VM
	// uses a tap backend instead of vhostuser ("vhostuser packets do not
	// traverse the userspace QEMU process", Section 5.1): virtio
	// descriptor handling plus notification bookkeeping per packet.
	QemuTapRelay sim.Time = 700

	// QemuPer8Bytes is QEMU's effective relay copy rate (~0.9 ns/byte:
	// two uncached copies of foreign buffers). Together with the fixed
	// relay cost this fits both the paper's 64-byte PVP tap rates and
	// the 1460-byte Figure 8 tap throughputs.
	QemuPer8Bytes sim.Time = 7
)

// ---------------------------------------------------------------------------
// eBPF / XDP execution (Table 5, Section 5.4).
//
// Anchors, single 2.4 GHz core:
//
//	task A (drop only)                 14  Mpps => ~71 ns/pkt
//	task B (parse eth/ipv4, drop)      8.1 Mpps => ~123 ns/pkt
//	task C (B + L2 map lookup, drop)   7.1 Mpps => ~141 ns/pkt
//	task D (B + rewrite + forward)     4.7 Mpps => ~213 ns/pkt
//
// Task A's 71 ns is driver overhead (XDPDriverOverhead) plus a handful of
// instructions. B-A = 52 ns buys header parsing (~45 interpreted
// instructions plus one payload cache miss). C-B = 18 ns is one hash-map
// lookup. D-C = 72 ns is packet rewrite plus the XDP_TX driver transmit.
// ---------------------------------------------------------------------------
const (
	// XDPDriverOverhead is the per-packet driver cost of running any XDP
	// program at the hook point (DMA sync, descriptor recycle on drop).
	XDPDriverOverhead sim.Time = 62

	// EBPFPerInstruction is the cost of one interpreted/JITed eBPF
	// instruction on the simulated core.
	EBPFPerInstruction sim.Time = 1

	// EBPFPacketTouch is the first access to packet payload from an XDP
	// program (cache miss on the DMA'd line).
	EBPFPacketTouch sim.Time = 14

	// EBPFMapLookupHash is one bpf hash-map lookup helper call.
	EBPFMapLookupHash sim.Time = 18

	// EBPFMapLookupArray is one bpf array-map lookup helper call.
	EBPFMapLookupArray sim.Time = 6

	// EBPFHelperBase is the call overhead of any other helper.
	EBPFHelperBase sim.Time = 4

	// XDPTxForward is the driver-side cost of XDP_TX (re-queue packet to
	// the same NIC's tx ring).
	XDPTxForward sim.Time = 55

	// XDPRedirectVeth is bpf_redirect into a veth device (Figure 5 path
	// C / Figure 8c third bar).
	XDPRedirectVeth sim.Time = 68

	// EBPFSandboxPenaltyNum/Den is the throughput penalty of running the
	// *whole* datapath as sandboxed eBPF bytecode at the tc hook rather
	// than native kernel C (Figure 2: 10-20% slower than the kernel
	// module). Effective cost = base * Num / Den.
	EBPFSandboxPenaltyNum = 115
	EBPFSandboxPenaltyDen = 100

	// RxHashSoftware is computing the 5-tuple rxhash in software because
	// XDP cannot access the NIC's hardware hash (Section 5.5 overhead 2).
	RxHashSoftware sim.Time = 21
)

// ---------------------------------------------------------------------------
// Features on the slow path and in the paper's NSX pipeline (Section 5.1).
// ---------------------------------------------------------------------------
const (
	// ConntrackLookup is a conntrack table hit (hash + state check).
	ConntrackLookup sim.Time = 90

	// ConntrackCommit creates a new tracked connection.
	ConntrackCommit sim.Time = 210

	// ConntrackEvict displaces a connection under table pressure:
	// LRU unlink, dual-direction hash removal, and NAT port release.
	ConntrackEvict sim.Time = 300

	// TunnelEncap is Geneve/VXLAN header push including outer header
	// fill-in (route/ARP already cached).
	TunnelEncap sim.Time = 110

	// TunnelDecap is outer header validation and strip.
	TunnelDecap sim.Time = 85

	// RecirculationOverhead is re-injecting a packet into the datapath
	// classifier for another pass (the NSX pipeline does 3 passes).
	RecirculationOverhead sim.Time = 40

	// UpcallCost is a datapath miss handed to ofproto for slow-path
	// translation, including the flow install that follows.
	UpcallCost sim.Time = 60 * sim.Microsecond

	// OpenFlowLookupPerTable is one table lookup during slow-path
	// translation of the OpenFlow pipeline.
	OpenFlowLookupPerTable sim.Time = 800
)

// ---------------------------------------------------------------------------
// Robustness: restart/upgrade gaps and slow-path degradation (the paper's
// deployment-experience argument for the userspace datapath).
// ---------------------------------------------------------------------------
const (
	// VswitchdRestartGap is how long the userspace datapath is down across
	// a vswitchd restart/upgrade: the process re-execs, re-opens its AF_XDP
	// sockets, and resumes polling. No kernel module is involved, so the
	// NIC keeps DMA-ing into the still-mapped umem rings meanwhile.
	VswitchdRestartGap sim.Time = 500 * sim.Microsecond

	// KernelModuleReloadGap is the equivalent gap for the kernel datapath:
	// openvswitch.ko must be unloaded and reloaded, tearing down the
	// datapath ports and their queues for the duration.
	KernelModuleReloadGap sim.Time = 5 * sim.Millisecond

	// NegativeFlowTTL is the lifetime of the short-lived drop megaflow
	// installed when slow-path translation fails, so subsequent packets of
	// the failing flow drop in the fast path instead of re-upcalling at
	// full cost.
	NegativeFlowTTL sim.Time = 10 * sim.Millisecond

	// RevalFlowCheck is one revalidator liveness check of a single
	// megaflow: read its stats, compare against the last observation,
	// decide keep/evict — the per-flow unit of ovs-vswitchd's revalidator
	// threads, charged to the dedicated revalidator CPU so experiments can
	// report a revalidator duty cycle.
	RevalFlowCheck sim.Time = 90

	// RevalFlowEvict is the additional cost of evicting one idle megaflow
	// (the flow_del round trip and cache invalidation bookkeeping), on top
	// of the check that condemned it.
	RevalFlowEvict sim.Time = 350
)

// ---------------------------------------------------------------------------
// Hardware flow offload (tc/ASAP²-style megaflow offload): established
// flows matched in the NIC's rule memory bypass the PMD's cache hierarchy
// entirely; the host only pays for rule installs and counter readback,
// both on the offload driver thread.
// ---------------------------------------------------------------------------
const (
	// OffloadHit is the host-side cost of a packet the NIC forwarded from
	// its hardware flow table: descriptor bookkeeping only — no metadata
	// init, no checksum, no parse, no cache probe. Near-zero by design;
	// the Mpps headline of the offload scenario is this constant against
	// the ~100 ns software fast path.
	OffloadHit sim.Time = 2

	// OffloadInstall is the driver round trip programming one hardware
	// flow rule (the tc-offload add), charged to the offload engine's
	// thread, never the PMD.
	OffloadInstall sim.Time = 12 * sim.Microsecond

	// OffloadReadbackPerFlow is the per-rule cost of the periodic counter
	// readback sweep that merges hardware hit counts into megaflow stats.
	OffloadReadbackPerFlow sim.Time = 40

	// OffloadTableSize is the default hardware rule-table capacity
	// (other_config:hw-offload-table-size): thousands of rules, as in
	// real SmartNIC rule memories — far below megaflow table sizes.
	OffloadTableSize = 2048

	// OffloadElephantPPS is the default EWMA packet rate above which a
	// megaflow is classed an elephant and pushed to hardware
	// (other_config:hw-offload-elephant-pps).
	OffloadElephantPPS = 100_000

	// OffloadReadbackInterval is the default counter-readback period
	// (other_config:hw-offload-readback-us). It must stay well under the
	// revalidator idle timeout, or hardware-hot flows would look idle to
	// the software stats and be evicted mid-flight.
	OffloadReadbackInterval sim.Time = 1 * sim.Millisecond

	// OffloadEWMAWeightPct is the default weight (percent) the rate EWMA
	// gives the newest readback interval.
	OffloadEWMAWeightPct = 50
)

// ---------------------------------------------------------------------------
// Multi-PMD scaling: rxq auto-load-balancing and transmit-side XPS (OVS's
// pmd-auto-lb and static txq assignment with locked shared txqs).
// ---------------------------------------------------------------------------
const (
	// AutoLBDefaultInterval is the PMD auto-load-balancer's measurement
	// interval in virtual time. OVS defaults to one minute of wall clock;
	// the simulation's windows are milliseconds, so the analog interval is
	// scaled to land a handful of balancer ticks inside one experiment
	// window.
	AutoLBDefaultInterval sim.Time = 5 * sim.Millisecond

	// AutoLBDefaultThresholdPct is the minimum per-PMD load-variance
	// improvement (percent) a dry run must predict before rxqs are
	// actually re-sharded (OVS's pmd-auto-lb-improvement-threshold,
	// default 25).
	AutoLBDefaultThresholdPct = 25

	// XPSTxMutexPerPacket is the per-packet cost of guarding a shared tx
	// queue with a mutex when more PMDs than txqs force XPS queue sharing
	// — same regime as the umempool O2 measurement.
	XPSTxMutexPerPacket sim.Time = MutexLockPerPacket

	// XPSTxSpinPerFlush is the per-flush cost of the shared-txq spinlock
	// in the default batched mode: acquired once per tx burst rather than
	// per packet, mirroring the O3 umempool batching.
	XPSTxSpinPerFlush sim.Time = SpinlockPerAcquire
)

// ---------------------------------------------------------------------------
// Latency-experiment fixed terms and jitter (Figures 10 and 11).
// ---------------------------------------------------------------------------
const (
	// WireAndNIC is the one-way wire propagation plus NIC ingress/egress
	// latency between the back-to-back hosts.
	WireAndNIC sim.Time = 3 * sim.Microsecond

	// PollModeCheckGap is the mean time a busy-polling PMD takes to
	// notice a new descriptor (half a polling iteration).
	PollModeCheckGap sim.Time = 600

	// SchedulerWakeupP50 is the typical latency to wake a blocked
	// process (netserver in a container, QEMU I/O thread, ...).
	SchedulerWakeupP50 sim.Time = 4 * sim.Microsecond

	// DPDKContainerCrossing is the extra user/kernel boundary DPDK pays
	// per direction to reach a container veth (AF_PACKET injection +
	// copy), the source of Figure 11's 81/136/241 us DPDK latencies.
	DPDKContainerCrossing sim.Time = 16 * sim.Microsecond
)

// BatchSize is the default packet batch the userspace datapath processes per
// iteration (NETDEV_MAX_BURST in OVS).
const BatchSize = 32

// EMCEntries is the exact-match-cache capacity (8192 entries in OVS,
// 2-way associative).
const EMCEntries = 8192

// SMCEntries is the signature-match-cache capacity (SMC_ENTRIES = 1<<20 in
// OVS, 4-way associative, 4 bytes per entry): two orders of magnitude more
// flows than the EMC in ~4 MB per PMD.
const SMCEntries = 1 << 20

// Link rates used by the paper's testbeds.
const (
	LinkRate10G = 10_000_000_000 // bits/s, Section 5.1 testbed
	LinkRate25G = 25_000_000_000 // bits/s, Section 5.2/5.5 testbed
)

// EthernetOverheadBytes is the per-frame overhead on the wire beyond the
// frame itself (which already includes the FCS): preamble+SFD (8) and the
// inter-frame gap (12). A 64-byte frame therefore occupies 84 byte times,
// giving the classic 14.88 Mpps at 10 GbE.
const EthernetOverheadBytes = 20

// LineRatePPS returns the maximum packets/s of a link for a given frame size
// in bytes (including FCS; preamble and IFG are added here).
func LineRatePPS(linkRateBitsPerSec int64, frameBytes int) float64 {
	wire := float64(frameBytes+EthernetOverheadBytes) * 8
	return float64(linkRateBitsPerSec) / wire
}

// TransmitTime returns the serialization delay of one frame on a link.
func TransmitTime(linkRateBitsPerSec int64, frameBytes int) sim.Time {
	wireBits := float64(frameBytes+EthernetOverheadBytes) * 8
	return sim.Time(wireBits / float64(linkRateBitsPerSec) * float64(sim.Second))
}

// ChecksumCost returns the software checksum cost for a payload of n
// bytes. Small packets (headers hot in cache) run at the O5-calibrated
// rate; larger payloads run at the cold-data rate implied by Figure 8's
// checksum-offload deltas (~0.6 ns/byte: 3.8 -> 8.4 Gbps for 1460-byte
// segments means ~0.9 us of checksumming per segment per side).
func ChecksumCost(n int) sim.Time {
	if n <= 256 {
		return sim.Time(n/8) * ChecksumPer8Bytes
	}
	return sim.Time(n/8) * 5 * ChecksumPer8Bytes
}

// CopyCost returns the memcpy cost for n bytes: L1-resident rate for
// packet-sized copies, a cache-cold rate for bulk (>4 kB) buffers.
func CopyCost(n int) sim.Time {
	per16 := KernelPerByte16
	if n > 4096 {
		per16 = 2 * KernelPerByte16
	}
	c := sim.Time(n/16) * per16
	if c == 0 && n > 0 {
		c = 1
	}
	return c
}

// QemuCopyCost is the QEMU relay's per-packet copy cost.
func QemuCopyCost(n int) sim.Time {
	c := sim.Time(n/8) * QemuPer8Bytes
	if c == 0 && n > 0 {
		c = 1
	}
	return c
}

// CopyCostCold is the fully-uncached copy rate (~0.25 ns/byte) paid by
// processes touching foreign buffers, e.g. QEMU relaying tap packets.
func CopyCostCold(n int) sim.Time {
	c := sim.Time(n/16) * 4 * KernelPerByte16
	if c == 0 && n > 0 {
		c = 1
	}
	return c
}

// SMTContention scales a base cost by the hyperthread-contention factor for
// n concurrently active packet-processing CPUs.
func SMTContention(base sim.Time, n int) sim.Time {
	if n <= 1 {
		return base
	}
	extra := int64(base) * int64(n-1) * SMTContentionNum / (int64(n) * SMTContentionDen)
	return base + sim.Time(extra)
}

// Userspace PMD contention coefficients (hundredths per extra busy
// thread), calibrated against Figure 12's sub-linear 64-byte multi-queue
// scaling: each additional AF_XDP PMD inflates everyone's per-packet cost
// by ~0.47x of the base (shared umem pool locks, softirq cache-line
// bouncing, the software rxhash of Section 5.5); each DPDK PMD by ~0.27x
// (LLC and memory-bandwidth pressure only). These fit the paper's 2/4/6
// queue points within a few percent.
const (
	ContentionAFXDPCentis = 47
	ContentionDPDKCentis  = 27
)

// UserContentionMilli returns the per-packet cost multiplier (x1000) for n
// concurrently busy PMD threads with per-thread coefficient kCentis.
func UserContentionMilli(n, kCentis int) int64 {
	if n <= 1 {
		return 1000
	}
	return 1000 + int64(n-1)*int64(kCentis)*10
}
