package vswitchd

import (
	"fmt"
	"net"
	"testing"
	"time"

	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/openflow"
	"ovsxdp/internal/ovsdb"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

func testDaemon(t *testing.T) (*VSwitchd, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(1)
	pl := ofproto.NewPipeline()
	d, err := dpif.Open("netdev", dpif.Config{Eng: eng, Pipeline: pl})
	if err != nil {
		t.Fatal(err)
	}
	db := ovsdb.NewServer()
	v := New(db, pl, d)
	v.Factory = func(ifType, name string, options map[string]string) (dpif.Port, error) {
		id := v.NextPortID()
		switch ifType {
		case "afxdp":
			nic := nicsim.New(eng, nicsim.Config{Name: name, Ifindex: id, Queues: 1})
			if _, err := core.AttachDefaultProgram(nic); err != nil {
				return nil, err
			}
			return core.NewAFXDPPort(core.AFXDPPortConfig{ID: id, NIC: nic, Eng: eng}), nil
		case "tap":
			return core.NewTapPort(id, vdev.NewTap(name)), nil
		default:
			return nil, fmt.Errorf("unsupported type %q", ifType)
		}
	}
	return v, eng
}

func TestBridgeAndPortFromOVSDB(t *testing.T) {
	v, _ := testDaemon(t)
	v.DB.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "eth0", "type": "afxdp", "bridge": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "tap0", "type": "tap", "bridge": "br-int"}},
	})
	b, ok := v.Bridge("br-int")
	if !ok {
		t.Fatal("bridge not created")
	}
	if len(b.Ports) != 2 {
		t.Fatalf("ports = %v", b.Ports)
	}
	if v.Datapath.PortCount() != 2 {
		t.Fatalf("datapath ports = %d", v.Datapath.PortCount())
	}
}

func TestBadInterfaceTypeRecordsError(t *testing.T) {
	v, _ := testDaemon(t)
	v.DB.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "x0", "type": "quantum", "bridge": "br-int"}},
	})
	rows := v.DB.Rows(ovsdb.TableInterface)
	if len(rows) != 1 || rows[0]["error"] == nil {
		t.Fatalf("interface error not recorded: %+v", rows)
	}
	if v.Datapath.PortCount() != 0 {
		t.Fatal("failed port must not attach")
	}
}

func TestDelPort(t *testing.T) {
	v, _ := testDaemon(t)
	v.DB.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br0"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "tap0", "type": "tap", "bridge": "br0"}},
	})
	if err := v.DelPort("br0", "tap0"); err != nil {
		t.Fatal(err)
	}
	if v.Datapath.PortCount() != 0 {
		t.Fatal("port not removed from datapath")
	}
	if err := v.DelPort("br0", "tap0"); err == nil {
		t.Fatal("double delete must fail")
	}
}

func TestOpenFlowSessionInstallsRules(t *testing.T) {
	v, _ := testDaemon(t)
	addr, err := v.ServeOpenFlow("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	conn, err := dialOF(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Features handshake.
	openflow.WriteMessage(conn, openflow.Message{Type: openflow.TypeFeaturesReq, Xid: 5})
	reply, err := readUntil(conn, openflow.TypeFeaturesReply)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openflow.ParseFeaturesReply(reply); err != nil {
		t.Fatal(err)
	}

	// Install a rule.
	m := ofproto.NewMatch(flow.Fields{InPort: 1}, flow.NewMaskBuilder().InPort().Build())
	fm := openflow.EncodeFlowMod(openflow.FlowMod{
		Command: openflow.FlowModAdd, TableID: 0, Priority: 10,
		Match: m, Actions: []ofproto.Action{ofproto.Output(2)}})
	if err := openflow.WriteMessage(conn, fm); err != nil {
		t.Fatal(err)
	}
	// Echo round trip serializes behind the flow mod.
	openflow.WriteMessage(conn, openflow.EchoRequest(9, nil))
	if _, err := readUntil(conn, openflow.TypeEchoReply); err != nil {
		t.Fatal(err)
	}

	if v.Pipeline.RuleCount() != 1 {
		t.Fatalf("pipeline rules = %d", v.Pipeline.RuleCount())
	}
	if v.FlowMods != 1 {
		t.Fatalf("flow mods = %d", v.FlowMods)
	}
}

func TestGuardRecoversCrash(t *testing.T) {
	v, _ := testDaemon(t)
	restarted := false
	v.OnRestart = func() { restarted = true }

	crashed := v.Guard(func() { panic("geneve parser null deref") })
	if !crashed {
		t.Fatal("crash not detected")
	}
	if v.Crashes != 1 || v.Restarts != 1 || !restarted {
		t.Fatalf("crashes=%d restarts=%d", v.Crashes, v.Restarts)
	}
	// The daemon keeps working afterwards.
	if v.Guard(func() {}) {
		t.Fatal("healthy call reported as crash")
	}
}

// dialOF connects and performs the hello exchange.
func dialOF(addr string) (conn netConn, err error) {
	c, err := dialTCP(addr)
	if err != nil {
		return nil, err
	}
	if err := openflow.WriteMessage(c, openflow.Hello(1)); err != nil {
		c.Close()
		return nil, err
	}
	if _, err := readUntil(c, openflow.TypeHello); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

type netConn interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}

func dialTCP(addr string) (netConn, error) {
	var lastErr error
	for i := 0; i < 20; i++ {
		c, err := netDial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}

func readUntil(c netConn, want openflow.MsgType) (openflow.Message, error) {
	for {
		m, err := openflow.ReadMessage(c)
		if err != nil {
			return m, err
		}
		if m.Type == want {
			return m, nil
		}
	}
}

func netDial(addr string) (netConn, error) { return net.Dial("tcp", addr) }

func TestOpenFlowDumpFlows(t *testing.T) {
	v, _ := testDaemon(t)
	// Install two rules directly.
	v.ApplyFlowMod(openflow.FlowMod{Command: openflow.FlowModAdd, TableID: 0, Priority: 10,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	v.ApplyFlowMod(openflow.FlowMod{Command: openflow.FlowModAdd, TableID: 5, Priority: 20,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 2}, flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Drop()}})

	addr, err := v.ServeOpenFlow("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	conn, err := dialOF(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	openflow.WriteMessage(conn, openflow.FlowStatsRequest(7, 0xff))
	reply, err := readUntil(conn, openflow.TypeMultipartReply)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := openflow.ParseFlowStatsReply(reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("dump-flows returned %d entries", len(entries))
	}

	// Single-table dump.
	openflow.WriteMessage(conn, openflow.FlowStatsRequest(8, 5))
	reply, err = readUntil(conn, openflow.TypeMultipartReply)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ = openflow.ParseFlowStatsReply(reply)
	if len(entries) != 1 || entries[0].Table != 5 || entries[0].Priority != 20 {
		t.Fatalf("table-5 dump = %+v", entries)
	}
}

// kernelDaemon builds a daemon over the given kernel-side dpif provider
// ("netlink" or "ebpf"); ports are TxPort sinks counting delivery.
func kernelDaemon(t *testing.T, dpType string, delivered *int) (*VSwitchd, dpif.Dpif) {
	t.Helper()
	eng := sim.NewEngine(1)
	pl := ofproto.NewPipeline()
	d, err := dpif.Open(dpType, dpif.Config{Eng: eng, Pipeline: pl})
	if err != nil {
		t.Fatal(err)
	}
	v := New(ovsdb.NewServer(), pl, d)
	v.Factory = func(ifType, name string, options map[string]string) (dpif.Port, error) {
		return dpif.TxPort{PortID: v.NextPortID(), PortName: name,
			Deliver: func(*packet.Packet) { *delivered++ }}, nil
	}
	return v, d
}

// TestDaemonOverKernelDpif is the point of the provider seam: the exact
// same daemon logic (OVSDB-driven ports, flow mods, crash restart) drives
// the kernel-module and eBPF datapaths it previously could not.
func TestDaemonOverKernelDpif(t *testing.T) {
	for _, dpType := range []string{"netlink", "ebpf"} {
		t.Run(dpType, func(t *testing.T) {
			delivered := 0
			v, d := kernelDaemon(t, dpType, &delivered)
			v.DB.Transact([]ovsdb.Op{
				{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br0"}},
				{Op: "insert", Table: ovsdb.TableInterface,
					Row: ovsdb.Row{"name": "p0", "type": "internal", "bridge": "br0"}},
				{Op: "insert", Table: ovsdb.TableInterface,
					Row: ovsdb.Row{"name": "p1", "type": "internal", "bridge": "br0"}},
			})
			if v.Datapath.PortCount() != 2 {
				t.Fatalf("ports = %d", v.Datapath.PortCount())
			}

			// An OpenFlow rule programs the shared pipeline; traffic
			// installs a datapath flow and is delivered to the TxPort.
			v.ApplyFlowMod(openflow.FlowMod{Command: openflow.FlowModAdd, TableID: 0, Priority: 10,
				Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, flow.NewMaskBuilder().InPort().Build()),
				Actions: []ofproto.Action{ofproto.Output(2)}})
			p := testPacket(t)
			d.Execute(p)
			if delivered != 1 {
				t.Fatalf("delivered = %d", delivered)
			}
			if s := d.Stats(); s.Flows != 1 || s.Missed != 1 {
				t.Fatalf("stats = %+v", s)
			}

			// A later flow mod revalidates: the cached datapath flow is
			// flushed through the seam.
			v.ApplyFlowMod(openflow.FlowMod{Command: openflow.FlowModAdd, TableID: 0, Priority: 20,
				Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, flow.NewMaskBuilder().InPort().Build()),
				Actions: []ofproto.Action{ofproto.Drop()}})
			if s := d.Stats(); s.Flows != 0 {
				t.Fatalf("flow mod did not flush datapath flows: %+v", s)
			}

			// Crash recovery flushes through the seam too.
			v.Guard(func() { panic("boom") })
			if v.Restarts != 1 {
				t.Fatalf("restarts = %d", v.Restarts)
			}
		})
	}
}

func testPacket(t *testing.T) *packet.Packet {
	t.Helper()
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 1
	return p
}
