// Package vswitchd is the ovs-vswitchd analog: the userspace daemon that
// owns the datapath, reconfigures it from OVSDB (bridges, ports, interface
// types), accepts OpenFlow connections that program the pipeline, manages
// the XDP program lifecycle on AF_XDP ports, and — per the Section 6
// lessons — survives its own crashes by auto-restarting instead of taking
// the host down with it.
package vswitchd

import (
	"fmt"
	"net"
	"sync"

	"ovsxdp/internal/api"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/openflow"
	"ovsxdp/internal/ovsdb"
	"ovsxdp/internal/perf"
)

// PortFactory builds a datapath port for an Interface row. The experiment
// or example wiring supplies it, since only the caller knows which NICs
// and virtual devices exist; the returned port must be one the daemon's
// dpif provider accepts (core.Port or dpif.TxPort for netdev, dpif.TxPort
// for the kernel datapaths).
type PortFactory func(ifType, name string, options map[string]string) (dpif.Port, error)

// Bridge is one OVS bridge.
type Bridge struct {
	Name string
	// Ports maps port name to datapath port id.
	Ports map[string]uint32
}

// VSwitchd is the daemon.
type VSwitchd struct {
	mu sync.Mutex

	DB       *ovsdb.Server
	Pipeline *ofproto.Pipeline
	Datapath dpif.Dpif
	Factory  PortFactory

	bridges map[string]*Bridge
	nextID  uint32

	ofLn net.Listener

	// Health monitoring (Section 6 "Reduced risk" / "Easier
	// troubleshooting"): a panic in packet processing crashes only the
	// daemon; the monitor restarts it and the flow caches rebuild from
	// upcalls.
	Crashes  uint64
	Restarts uint64
	// OnRestart, when set, is called after an auto-restart completes.
	OnRestart func()

	// FlowMods counts rules installed via OpenFlow.
	FlowMods uint64
}

// New builds a daemon around a database, the OpenFlow pipeline, and any
// dpif datapath provider — the daemon never learns which one it drives.
func New(db *ovsdb.Server, pl *ofproto.Pipeline, dp dpif.Dpif) *VSwitchd {
	v := &VSwitchd{
		DB:       db,
		Pipeline: pl,
		Datapath: dp,
		bridges:  make(map[string]*Bridge),
		nextID:   1,
	}
	if db != nil {
		db.OnChange = v.onDBChange
	}
	return v
}

// PmdPerfShow renders the datapath's per-thread performance counters — the
// `ovs-appctl dpif-netdev/pmd-perf-show` endpoint.
func (v *VSwitchd) PmdPerfShow() string {
	return api.NewPerfView(v.Datapath.PerfStats()).FormatTable()
}

// PmdPerfTrace renders captured packet lifecycles; call EnableTrace on the
// datapath first (the `ovs-appctl` trace analog).
func (v *VSwitchd) PmdPerfTrace() string {
	return perf.FormatTrace(v.Datapath.PerfStats())
}

// PmdRxqShow renders the datapath's rxq-to-thread placement — the
// `ovs-appctl dpif-netdev/pmd-rxq-show` endpoint. Kernel-side datapaths
// report their softirq rx contexts instead.
func (v *VSwitchd) PmdRxqShow() string {
	return v.Datapath.PmdRxqShow()
}

// SetOtherConfig applies ovs-vsctl-style other_config keys to the datapath
// — the `ovs-vsctl set Open_vSwitch . other_config:key=value` endpoint.
// Validation is all-or-nothing: any unknown key or malformed value leaves
// the datapath untouched.
func (v *VSwitchd) SetOtherConfig(kv map[string]string) error {
	return v.Datapath.SetConfig(kv)
}

// OtherConfig reads the datapath's effective configuration back — the
// `ovs-vsctl get Open_vSwitch . other_config` endpoint.
func (v *VSwitchd) OtherConfig() map[string]string {
	return v.Datapath.GetConfig()
}

// Bridges returns the bridge names.
func (v *VSwitchd) Bridges() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var names []string
	for n := range v.bridges {
		names = append(names, n)
	}
	return names
}

// Bridge returns a bridge by name.
func (v *VSwitchd) Bridge(name string) (*Bridge, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	b, ok := v.bridges[name]
	return b, ok
}

// onDBChange reacts to OVSDB updates: bridges appear/disappear, interfaces
// become datapath ports.
func (v *VSwitchd) onDBChange(u ovsdb.Update) {
	switch u.Table {
	case ovsdb.TableBridge:
		name, _ := u.Row["name"].(string)
		v.mu.Lock()
		defer v.mu.Unlock()
		switch u.Op {
		case "insert":
			if _, ok := v.bridges[name]; !ok {
				v.bridges[name] = &Bridge{Name: name, Ports: make(map[string]uint32)}
			}
		case "delete":
			delete(v.bridges, name)
		}
	case ovsdb.TableInterface:
		if u.Op != "insert" {
			return
		}
		name, _ := u.Row["name"].(string)
		ifType, _ := u.Row["type"].(string)
		bridge, _ := u.Row["bridge"].(string)
		opts := map[string]string{}
		if m, ok := u.Row["options"].(map[string]any); ok {
			for k, val := range m {
				opts[k] = fmt.Sprint(val)
			}
		}
		if err := v.AddPort(bridge, name, ifType, opts); err != nil {
			// Configuration errors surface via the Interface row.
			v.DB.Transact([]ovsdb.Op{{Op: "update", Table: ovsdb.TableInterface,
				UUID: u.Row.UUID(), Row: ovsdb.Row{"error": err.Error()}}})
		}
	}
}

// AddPort creates a datapath port on a bridge using the factory. For
// afxdp interfaces, the factory is expected to load and attach the XDP
// program (core.AttachDefaultProgram) — the lifecycle step Section 4
// describes.
func (v *VSwitchd) AddPort(bridge, name, ifType string, options map[string]string) error {
	if v.Factory == nil {
		return fmt.Errorf("vswitchd: no port factory configured")
	}
	port, err := v.Factory(ifType, name, options)
	if err != nil {
		return fmt.Errorf("vswitchd: creating %s port %q: %w", ifType, name, err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	b, ok := v.bridges[bridge]
	if !ok {
		return fmt.Errorf("vswitchd: no bridge %q", bridge)
	}
	if err := v.Datapath.PortAdd(port); err != nil {
		return fmt.Errorf("vswitchd: attaching %s port %q: %w", ifType, name, err)
	}
	b.Ports[name] = port.ID()
	return nil
}

// NextPortID hands out datapath port numbers for factories that need them.
func (v *VSwitchd) NextPortID() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	id := v.nextID
	v.nextID++
	return id
}

// DelPort removes a port from its bridge and the datapath.
func (v *VSwitchd) DelPort(bridge, name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	b, ok := v.bridges[bridge]
	if !ok {
		return fmt.Errorf("vswitchd: no bridge %q", bridge)
	}
	id, ok := b.Ports[name]
	if !ok {
		return fmt.Errorf("vswitchd: no port %q on %q", name, bridge)
	}
	if err := v.Datapath.PortDel(id); err != nil {
		return err
	}
	delete(b.Ports, name)
	return nil
}

// --- OpenFlow endpoint ---------------------------------------------------------

// ServeOpenFlow accepts controller connections on addr and returns the
// bound address.
func (v *VSwitchd) ServeOpenFlow(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	v.ofLn = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go v.handleOpenFlow(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close shuts down the OpenFlow listener.
func (v *VSwitchd) Close() {
	if v.ofLn != nil {
		v.ofLn.Close()
	}
}

func (v *VSwitchd) handleOpenFlow(conn net.Conn) {
	defer conn.Close()
	openflow.WriteMessage(conn, openflow.Hello(0))
	for {
		msg, err := openflow.ReadMessage(conn)
		if err != nil {
			return
		}
		switch msg.Type {
		case openflow.TypeHello:
			// Version negotiated; nothing to do.
		case openflow.TypeEchoRequest:
			openflow.WriteMessage(conn, openflow.EchoReply(msg))
		case openflow.TypeFeaturesReq:
			openflow.WriteMessage(conn, openflow.FeaturesReply(msg.Xid, 0x0000feedbeef0001))
		case openflow.TypeFlowMod:
			fm, err := openflow.DecodeFlowMod(msg)
			if err != nil {
				openflow.WriteMessage(conn, openflow.ErrorMsg(msg.Xid, 4, 0, nil))
				continue
			}
			v.ApplyFlowMod(fm)
		case openflow.TypeMultipartReq:
			table, err := openflow.ParseFlowStatsRequest(msg)
			if err != nil {
				openflow.WriteMessage(conn, openflow.ErrorMsg(msg.Xid, 18, 0, nil))
				continue
			}
			openflow.WriteMessage(conn, openflow.FlowStatsReply(msg.Xid, v.FlowStats(table)))
		default:
			openflow.WriteMessage(conn, openflow.ErrorMsg(msg.Xid, 1, 0, nil))
		}
	}
}

// ApplyFlowMod installs or removes a rule and revalidates datapath flows.
func (v *VSwitchd) ApplyFlowMod(fm openflow.FlowMod) {
	switch fm.Command {
	case openflow.FlowModAdd:
		v.Pipeline.AddRule(&ofproto.Rule{
			TableID:  fm.TableID,
			Priority: fm.Priority,
			Cookie:   fm.Cookie,
			Match:    fm.Match,
			Actions:  fm.Actions,
		})
	case openflow.FlowModDelete:
		v.Pipeline.Table(fm.TableID).Remove(fm.Match, fm.Priority)
	}
	v.FlowMods++
	// Revalidation: cached megaflows may encode stale decisions.
	v.Datapath.FlowFlush()
}

// FlowStats gathers per-rule statistics for a table (0xff = all tables),
// the data behind ovs-ofctl dump-flows.
func (v *VSwitchd) FlowStats(table uint8) []openflow.FlowStatEntry {
	var out []openflow.FlowStatEntry
	tables := v.Pipeline.TableIDs()
	for _, id := range tables {
		if table != 0xff && id != table {
			continue
		}
		for _, r := range v.Pipeline.Table(id).Rules() {
			out = append(out, openflow.FlowStatEntry{
				Table:    r.TableID,
				Priority: r.Priority,
				Packets:  r.PacketCount,
				Cookie:   r.Cookie,
			})
		}
	}
	return out
}

// --- Health monitor --------------------------------------------------------------

// Guard wraps a packet-path call; a panic is converted into a crash +
// restart cycle instead of propagating (the userspace analog of "a bug in
// OVS with AF_XDP only crashes the OVS process, which automatically
// restarts").
func (v *VSwitchd) Guard(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
			v.Crashes++
			v.restart()
		}
	}()
	fn()
	return false
}

// restart is the health-monitor action: flush all cached flow state (the
// process died; caches die with it) and resume. Ports and OpenFlow rules
// survive because their configuration lives in OVSDB / the controller,
// which re-installs on reconnect — modeled here by retaining the pipeline.
func (v *VSwitchd) restart() {
	v.Datapath.FlowFlush()
	v.Restarts++
	if v.OnRestart != nil {
		v.OnRestart()
	}
}
