// Package vmsim models the virtual machines of Sections 3.3 and 5: a guest
// with vCPUs (accounted to the Guest category, as Table 4 does), a
// virtio-net frontend, and either of the two backends the paper compares:
//
//   - vhostuser (Figure 5 path B): the guest's rings are shared memory that
//     OVS userspace reads and writes directly, no kernel or QEMU hop.
//   - tap (Figure 5 path A): packets cross the kernel tap device and are
//     relayed by the QEMU process ("vhostuser packets do not traverse the
//     userspace QEMU process", Section 5.1 — tap packets do).
//
// The guest runs a pluggable packet handler; the default reflector swaps
// MAC addresses and transmits back, which is what the PVP loopback
// experiments need. The TCP experiments install their own handlers.
package vmsim

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

// Backend abstracts how the VM's virtio frontend reaches the host switch.
type Backend interface {
	// GuestRxQueue is the queue the guest consumes (host -> guest).
	GuestRxQueue() *vdev.Queue
	// GuestTransmit sends one packet from the guest toward the host,
	// charging backend-specific costs.
	GuestTransmit(p *packet.Packet)
}

// VhostUserBackend is shared-memory virtio: zero kernel involvement.
type VhostUserBackend struct {
	Dev *vdev.VhostUser
}

// GuestRxQueue implements Backend.
func (b *VhostUserBackend) GuestRxQueue() *vdev.Queue { return b.Dev.ToGuest }

// GuestTransmit implements Backend.
func (b *VhostUserBackend) GuestTransmit(p *packet.Packet) { b.Dev.FromGuest.Push(p) }

// TapBackend relays packets between the tap device and the guest through
// the QEMU process, paying the extra hop on a host userspace CPU. With a
// distinct TxCPU the two directions relay concurrently (multiqueue
// virtio / vhost-net-style); with one CPU they serialize.
type TapBackend struct {
	Tap     *vdev.Tap
	QemuCPU *sim.CPU
	TxCPU   *sim.CPU
	Eng     *sim.Engine

	guestRx *vdev.Queue
	started bool
}

// NewTapBackend builds a tap backend whose relay directions share qemuCPU.
func NewTapBackend(eng *sim.Engine, tap *vdev.Tap, qemuCPU *sim.CPU) *TapBackend {
	return NewTapBackendMQ(eng, tap, qemuCPU, qemuCPU)
}

// NewTapBackendMQ builds a tap backend with separate relay CPUs per
// direction (multiqueue virtio).
func NewTapBackendMQ(eng *sim.Engine, tap *vdev.Tap, rxCPU, txCPU *sim.CPU) *TapBackend {
	b := &TapBackend{Tap: tap, QemuCPU: rxCPU, TxCPU: txCPU, Eng: eng,
		guestRx: vdev.NewQueue(tap.Name+":guest-rx", 0)}
	// QEMU relay: tap -> guest rx queue. QEMU reads the tap (syscall +
	// cold copy) and writes into the guest's virtio ring (another cold
	// copy) — the overhead Figure 8(b) blames for tap trailing
	// vhostuser.
	relay := &kernelsim.NAPIActor{
		Eng: eng, CPU: rxCPU,
		Src:      kernelsim.VQueueSource{Q: tap.ToKernel},
		Category: sim.User,
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				cpu.Consume(sim.User, costmodel.QemuTapRelay+costmodel.SyscallBase+
					costmodel.QemuCopyCost(len(p.Data)))
				b.guestRx.Push(p)
			}
		},
	}
	relay.Start()
	return b
}

// GuestRxQueue implements Backend.
func (b *TapBackend) GuestRxQueue() *vdev.Queue { return b.guestRx }

// GuestTransmit implements Backend: QEMU writes the packet into the tap.
func (b *TapBackend) GuestTransmit(p *packet.Packet) {
	b.TxCPU.Consume(sim.User, costmodel.QemuTapRelay+costmodel.SyscallBase+
		costmodel.QemuCopyCost(len(p.Data)))
	b.Tap.FromKernel.Push(p)
}

// VM is one guest.
type VM struct {
	Name    string
	Eng     *sim.Engine
	CPU     *sim.CPU // the vCPU, accounted as Guest
	Backend Backend

	// OffloadsNegotiated: the virtio device negotiated checksum/TSO, so
	// guest transmissions carry CsumPartial/TSO flags instead of paying
	// software checksum in the guest (Figure 8's offload toggles).
	OffloadsNegotiated bool

	// FastReflector models a poll-mode guest application (testpmd-style
	// l2fwd, as the paper's PVP loopbacks run): per-packet virtio and
	// stack costs shrink to the poll-mode driver's share.
	FastReflector bool

	// OnPacket handles received packets; the default reflects them back
	// (PVP). The handler runs after guest-side receive costs are
	// charged.
	OnPacket func(vm *VM, p *packet.Packet)

	// Stats.
	RxPackets uint64
	TxPackets uint64
}

// Config parameterizes New.
type Config struct {
	Name               string
	Backend            Backend
	CPU                *sim.CPU // optional; created when nil
	OffloadsNegotiated bool
	FastReflector      bool
	OnPacket           func(vm *VM, p *packet.Packet)
}

// New builds and starts a VM.
func New(eng *sim.Engine, cfg Config) *VM {
	cpu := cfg.CPU
	if cpu == nil {
		cpu = eng.NewCPU("vcpu-" + cfg.Name)
	}
	vm := &VM{
		Name:               cfg.Name,
		Eng:                eng,
		CPU:                cpu,
		Backend:            cfg.Backend,
		OffloadsNegotiated: cfg.OffloadsNegotiated,
		FastReflector:      cfg.FastReflector,
		OnPacket:           cfg.OnPacket,
	}
	if vm.OnPacket == nil {
		vm.OnPacket = Reflect
	}
	actor := &kernelsim.NAPIActor{
		Eng: eng, CPU: cpu,
		Src:      kernelsim.VQueueSource{Q: cfg.Backend.GuestRxQueue()},
		Category: sim.Guest,
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				rx := costmodel.VirtioGuestRx + costmodel.GuestStackPerPacket
				if vm.FastReflector {
					rx = costmodel.VirtioGuestRx / 2
				}
				cpu.Consume(sim.Guest, rx)
				vm.RxPackets++
				vm.OnPacket(vm, p)
			}
		},
	}
	actor.Start()
	return vm
}

// Transmit sends a packet from guest context, charging guest-side transmit
// costs, including software checksumming when offloads are not negotiated.
func (vm *VM) Transmit(p *packet.Packet) {
	tx := costmodel.VirtioGuestTx + costmodel.GuestStackPerPacket
	if vm.FastReflector {
		tx = costmodel.VirtioGuestTx / 2
	}
	vm.CPU.Consume(sim.Guest, tx)
	if vm.OffloadsNegotiated {
		p.Offloads |= packet.CsumPartial
	} else {
		vm.CPU.Consume(sim.Guest, costmodel.ChecksumCost(len(p.Data)))
		p.Offloads |= packet.CsumVerified
		// Without TSO negotiation the guest must segment to MSS
		// itself before transmitting; oversized sends are the
		// caller's bug.
	}
	vm.TxPackets++
	vm.Backend.GuestTransmit(p)
}

// Reflect is the default handler: swap Ethernet addresses and transmit
// back (the guest side of a PVP loop).
func Reflect(vm *VM, p *packet.Packet) {
	if len(p.Data) >= 12 {
		var tmp [6]byte
		copy(tmp[:], p.Data[0:6])
		copy(p.Data[0:6], p.Data[6:12])
		copy(p.Data[6:12], tmp[:])
	}
	p.ResetMetadata()
	vm.Transmit(p)
}
