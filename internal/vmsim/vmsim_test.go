package vmsim

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func udpPkt() *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1, 2).PayloadLen(18).PadTo(64).Build())
}

func TestVhostReflector(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := vdev.NewVhostUser("vh0")
	vm := New(eng, Config{Name: "vm0", Backend: &VhostUserBackend{Dev: dev}})

	dev.ToGuest.Push(udpPkt())
	eng.Run()

	out := dev.FromGuest.Pop(4)
	if len(out) != 1 {
		t.Fatalf("reflected %d packets", len(out))
	}
	eth, _ := hdr.ParseEthernet(out[0].Data)
	if eth.Dst != macA || eth.Src != macB {
		t.Fatal("reflector must swap MACs")
	}
	if vm.RxPackets != 1 || vm.TxPackets != 1 {
		t.Fatalf("stats rx=%d tx=%d", vm.RxPackets, vm.TxPackets)
	}
	// All VM work lands in the Guest category.
	if vm.CPU.Busy(sim.Guest) == 0 {
		t.Fatal("guest time not charged")
	}
	if vm.CPU.Busy(sim.User) != 0 || vm.CPU.Busy(sim.Softirq) != 0 {
		t.Fatal("VM work leaked into host categories")
	}
}

func TestTapBackendPaysQemuRelay(t *testing.T) {
	eng := sim.NewEngine(1)
	tap := vdev.NewTap("tap0")
	qemu := eng.NewCPU("qemu")
	backend := NewTapBackend(eng, tap, qemu)
	vm := New(eng, Config{Name: "vm0", Backend: backend})

	tap.ToKernel.Push(udpPkt())
	eng.Run()

	if got := tap.FromKernel.Len(); got != 1 {
		t.Fatalf("reflected %d packets via tap", got)
	}
	if qemu.Busy(sim.User) == 0 {
		t.Fatal("QEMU relay cost not charged")
	}
	if vm.CPU.Busy(sim.Guest) == 0 {
		t.Fatal("guest cost not charged")
	}
}

func TestOffloadNegotiation(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := vdev.NewVhostUser("vh0")
	vm := New(eng, Config{Name: "vm0", Backend: &VhostUserBackend{Dev: dev}, OffloadsNegotiated: true})
	p := udpPkt()
	vm.Transmit(p)
	if p.Offloads&packet.CsumPartial == 0 {
		t.Fatal("negotiated offloads must mark CsumPartial")
	}
	csumCost := vm.CPU.Busy(sim.Guest)

	// Without negotiation the guest pays the checksum itself.
	eng2 := sim.NewEngine(1)
	dev2 := vdev.NewVhostUser("vh1")
	vm2 := New(eng2, Config{Name: "vm1", Backend: &VhostUserBackend{Dev: dev2}})
	p2 := udpPkt()
	vm2.Transmit(p2)
	if p2.Offloads&packet.CsumPartial != 0 {
		t.Fatal("without negotiation there must be no partial csum")
	}
	if vm2.CPU.Busy(sim.Guest) <= csumCost {
		t.Fatal("software checksum must cost guest time")
	}
}

func TestCustomHandler(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := vdev.NewVhostUser("vh0")
	var got *packet.Packet
	New(eng, Config{Name: "vm0", Backend: &VhostUserBackend{Dev: dev},
		OnPacket: func(vm *VM, p *packet.Packet) { got = p }})
	dev.ToGuest.Push(udpPkt())
	eng.Run()
	if got == nil {
		t.Fatal("custom handler not invoked")
	}
	if dev.FromGuest.Len() != 0 {
		t.Fatal("custom handler must not auto-reflect")
	}
}
