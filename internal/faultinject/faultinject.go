// Package faultinject is the deterministic fault injector behind the
// robustness exhibits: faults are scheduled in *virtual time* on the
// simulation engine, so arming a fault window never perturbs packet timing
// — two runs with the same seed and the same schedule are byte-identical,
// faults included. The injector itself is pure bookkeeping; the substrates
// (afxdp pools and rings, nicsim links, vdev queues, the dpif providers'
// upcall paths, the revalidator) each expose a small gate hook the
// injector's closures plug into.
//
// The fault taxonomy mirrors what the paper's deployment section worries
// about: slow-path overload (bounded upcall queues, the netdev analog of
// the kernel's ENOBUFS on the netlink socket), umem/chunk exhaustion, XSK
// ring stalls, device link flaps, and a wedged revalidator. Transient
// faults (handler failure, ring stall) are retried with exponential
// backoff; hard faults count drops.
package faultinject

import (
	"fmt"
	"strings"

	"ovsxdp/internal/sim"
)

// Kind names one injectable fault class.
type Kind int

// Fault kinds.
const (
	// KindUmemExhaustion makes umempool allocations fail as if every
	// chunk were in flight.
	KindUmemExhaustion Kind = iota
	// KindRingStall freezes an XSK ring pair: kernel-side deliveries drop
	// and tx drains make no progress until the window closes.
	KindRingStall
	// KindLinkFlap takes a device link down: rx and tx frames are lost at
	// the carrier, exactly like a cable pull.
	KindLinkFlap
	// KindUpcallFailure makes slow-path translation fail transiently (the
	// vswitchd handler thread is wedged or restarting).
	KindUpcallFailure
	// KindRevalidatorStall wedges the revalidator: sweeps are skipped and
	// idle megaflows age out late.
	KindRevalidatorStall
	// KindConntrackPressure clamps a conntrack zone's effective
	// connection limit for the window, forcing the graceful-degradation
	// ladder (embryonic early-drop, LRU eviction) to engage — memory
	// pressure on the connection table, injectable on schedule.
	KindConntrackPressure
	// KindOffloadTablePressure clamps the NIC hardware flow table's
	// effective capacity for the window, force-evicting offloaded rules —
	// firmware rule-memory pressure (shared with other offload consumers),
	// injectable on schedule. Traffic falls back to the software path.
	KindOffloadTablePressure
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUmemExhaustion:
		return "umem-exhaustion"
	case KindRingStall:
		return "ring-stall"
	case KindLinkFlap:
		return "link-flap"
	case KindUpcallFailure:
		return "upcall-failure"
	case KindRevalidatorStall:
		return "revalidator-stall"
	case KindConntrackPressure:
		return "conntrack-pressure"
	case KindOffloadTablePressure:
		return "offload-table-pressure"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FaultError is the typed error an injected fault surfaces. Transient
// faults are retried by the upcall machinery; hard faults are drops.
type FaultError struct {
	Kind   Kind
	Target string
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("faultinject: %s on %s", e.Kind, e.Target)
}

// Transient reports whether retrying can succeed once the fault window
// closes; the datapaths' retry-with-backoff paths key off this.
func (e *FaultError) Transient() bool {
	return e.Kind == KindUpcallFailure || e.Kind == KindRingStall
}

// Injector schedules fault windows in virtual time and hands out gate
// closures the substrates poll. All state changes happen inside engine
// events, so determinism follows from the engine's.
type Injector struct {
	eng     *sim.Engine
	active  map[string]bool
	trips   [numKinds]uint64
	windows [numKinds]uint64
}

// New builds an injector on the engine.
func New(eng *sim.Engine) *Injector {
	return &Injector{eng: eng, active: make(map[string]bool)}
}

func faultKey(k Kind, target string) string { return k.String() + "|" + target }

// Window arms one fault of kind k on target for [at, at+dur) in virtual
// time. onSet, when non-nil, runs at both edges with the new active state
// (used to drive side effects like nicsim link carrier).
func (in *Injector) Window(k Kind, target string, at, dur sim.Time, onSet func(active bool)) {
	in.windows[k]++
	key := faultKey(k, target)
	in.eng.ScheduleAt(at, func() {
		in.active[key] = true
		if onSet != nil {
			onSet(true)
		}
	})
	in.eng.ScheduleAt(at+dur, func() {
		delete(in.active, key)
		if onSet != nil {
			onSet(false)
		}
	})
}

// Gate returns the poll closure a substrate hook plugs in: it reports
// whether the fault is currently active, counting each positive poll as
// one trip.
func (in *Injector) Gate(k Kind, target string) func() bool {
	key := faultKey(k, target)
	return func() bool {
		if in.active[key] {
			in.trips[k]++
			return true
		}
		return false
	}
}

// Active reports whether the fault is inside an armed window right now.
func (in *Injector) Active(k Kind, target string) bool {
	return in.active[faultKey(k, target)]
}

// Err returns the typed error for a fault on target.
func (in *Injector) Err(k Kind, target string) error {
	return &FaultError{Kind: k, Target: target}
}

// Trips returns how many times gates of kind k fired.
func (in *Injector) Trips(k Kind) uint64 { return in.trips[k] }

// Windows returns how many windows of kind k were armed.
func (in *Injector) Windows(k Kind) uint64 { return in.windows[k] }

// Report renders the per-fault counters, deterministically ordered.
func (in *Injector) Report() string {
	var b strings.Builder
	for k := Kind(0); k < numKinds; k++ {
		if in.windows[k] == 0 && in.trips[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "fault %-18s windows:%d trips:%d\n", k, in.windows[k], in.trips[k])
	}
	if b.Len() == 0 {
		return "no faults injected\n"
	}
	return b.String()
}

// maxBackoffShift caps the exponential term so pathological attempt counts
// cannot overflow sim.Time.
const maxBackoffShift = 20

// Backoff returns the retry delay for the given attempt (1-based):
// exponential in the attempt with jitter of up to half the deterministic
// term, drawn from the seeded sim RNG — a virtual-time timer, so a seeded
// run retries identically every time.
func Backoff(r *sim.Rand, base sim.Time, attempt int) sim.Time {
	if base <= 0 {
		base = sim.Microsecond
	}
	if attempt < 1 {
		attempt = 1
	}
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	d := base << uint(attempt)
	return d + sim.Time(r.Intn(int(d/2)+1))
}
