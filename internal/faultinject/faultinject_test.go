package faultinject

import (
	"errors"
	"strings"
	"testing"

	"ovsxdp/internal/sim"
)

// TestWindowGateLifecycle walks a gate through before/inside/after one
// armed window and checks the trip accounting.
func TestWindowGateLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := New(eng)
	gate := inj.Gate(KindLinkFlap, "eth0")

	inj.Window(KindLinkFlap, "eth0", 10*sim.Microsecond, 20*sim.Microsecond, nil)

	var polls []bool
	for _, at := range []sim.Time{5, 15, 25, 35} {
		at := at * sim.Microsecond
		eng.ScheduleAt(at, func() { polls = append(polls, gate()) })
	}
	eng.RunUntil(sim.Millisecond)

	want := []bool{false, true, true, false}
	for i := range want {
		if polls[i] != want[i] {
			t.Errorf("poll %d = %v, want %v", i, polls[i], want[i])
		}
	}
	if inj.Trips(KindLinkFlap) != 2 {
		t.Errorf("trips = %d, want 2", inj.Trips(KindLinkFlap))
	}
	if inj.Windows(KindLinkFlap) != 1 {
		t.Errorf("windows = %d, want 1", inj.Windows(KindLinkFlap))
	}
	if inj.Active(KindLinkFlap, "eth0") {
		t.Error("fault still active after window closed")
	}
	if !strings.Contains(inj.Report(), "link-flap") {
		t.Errorf("report missing kind: %q", inj.Report())
	}
}

// TestWindowOnSetEdges checks the side-effect hook fires at both edges.
func TestWindowOnSetEdges(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := New(eng)
	var edges []bool
	inj.Window(KindLinkFlap, "eth0", 0, 50*sim.Microsecond, func(active bool) {
		edges = append(edges, active)
	})
	eng.RunUntil(sim.Millisecond)
	if len(edges) != 2 || !edges[0] || edges[1] {
		t.Errorf("edges = %v, want [true false]", edges)
	}
}

// TestFaultErrorTransient pins which kinds the retry machinery retries.
func TestFaultErrorTransient(t *testing.T) {
	transient := map[Kind]bool{
		KindUpcallFailure:    true,
		KindRingStall:        true,
		KindUmemExhaustion:   false,
		KindLinkFlap:         false,
		KindRevalidatorStall: false,
	}
	for k, want := range transient {
		err := (&Injector{}).Err(k, "x")
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("%v: not a *FaultError", k)
		}
		if fe.Transient() != want {
			t.Errorf("%v: Transient = %v, want %v", k, fe.Transient(), want)
		}
	}
}

// TestBackoffDeterministicAndMonotone: same seed, same delays; the
// deterministic component doubles per attempt; jitter stays bounded.
func TestBackoffDeterministicAndMonotone(t *testing.T) {
	base := 25 * sim.Microsecond
	a := sim.NewEngine(7).Rand()
	b := sim.NewEngine(7).Rand()
	for attempt := 1; attempt <= 6; attempt++ {
		da := Backoff(a, base, attempt)
		db := Backoff(b, base, attempt)
		if da != db {
			t.Fatalf("attempt %d: %v != %v with equal seeds", attempt, da, db)
		}
		lo := base << uint(attempt)
		hi := lo + lo/2
		if da < lo || da > hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, da, lo, hi)
		}
	}
	// The shift cap keeps absurd attempt counts finite and positive.
	if d := Backoff(a, base, 1000); d <= 0 {
		t.Errorf("capped backoff not positive: %v", d)
	}
}
