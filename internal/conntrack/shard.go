package conntrack

import "sort"

// DefaultShards is the shard count a fresh table starts with, matching the
// "ct-shards" other_config default.
const DefaultShards = 8

// ctShard is one partition of the connection index. Real OVS (and the
// kernel's nf_conntrack) partition the hash table so concurrent PMD
// threads contend on bucket locks, not one table lock; the simulator is
// single-goroutine per engine, so shards here model that partitioning —
// each lookup touches exactly one shard, and the per-shard lookup counters
// let scenarios verify the hot path never fans out — without needing
// mutexes that virtual time would never contend.
type ctShard struct {
	conns   map[connKey]*Conn
	lookups uint64
}

func (t *Table) initShards(n int) {
	t.shards = make([]ctShard, n)
	for i := range t.shards {
		t.shards[i].conns = make(map[connKey]*Conn)
	}
}

// tupleHash is a deterministic FNV-1a-style mix over the zone and tuple.
// Determinism matters: shard placement feeds per-shard occupancy stats,
// which appear in scenario output, so the hash must not vary by process
// (no runtime map hashing, no seeds).
func tupleHash(zone uint16, tu Tuple) uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
		h ^= h >> 15
	}
	mix(uint32(zone))
	mix(uint32(tu.SrcIP))
	mix(uint32(tu.DstIP))
	mix(uint32(tu.Proto))
	mix(uint32(tu.SrcPort)<<16 | uint32(tu.DstPort))
	return h
}

func (t *Table) shardFor(zone uint16, tu Tuple) *ctShard {
	return &t.shards[int(tupleHash(zone, tu)%uint32(len(t.shards)))]
}

// get looks the tuple up in its shard, counting the probe.
func (t *Table) get(zone uint16, tu Tuple) (*Conn, bool) {
	s := t.shardFor(zone, tu)
	s.lookups++
	c, ok := s.conns[connKey{zone, tu}]
	return c, ok
}

// NumShards returns the current shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// SetShards repartitions the index into n shards (n < 1 is clamped to 1).
// Existing connections are rehashed; per-shard lookup counters reset.
// Cold path: reconfiguration, not per-packet.
func (t *Table) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if n == len(t.shards) {
		return
	}
	old := t.shards
	t.initShards(n)
	for i := range old {
		for k, c := range old[i].conns {
			t.shardFor(k.zone, k.tuple).conns[k] = c
		}
	}
}

// ShardSizes appends each shard's entry count (both directions counted) to
// dst and returns it; pass a reused slice for allocation-free snapshots.
func (t *Table) ShardSizes(dst []int) []int {
	dst = dst[:0]
	for i := range t.shards {
		dst = append(dst, len(t.shards[i].conns))
	}
	return dst
}

// ShardLookups appends each shard's lookup count to dst and returns it.
func (t *Table) ShardLookups(dst []uint64) []uint64 {
	dst = dst[:0]
	for i := range t.shards {
		dst = append(dst, t.shards[i].lookups)
	}
	return dst
}

// ZoneConns is one zone's live-connection count for stats surfaces.
type ZoneConns struct {
	Zone  uint16
	Conns int
}

// ConnsPerZone appends the per-zone live counts, sorted by zone, to dst
// and returns it. Zones with no live connections are omitted.
func (t *Table) ConnsPerZone(dst []ZoneConns) []ZoneConns {
	dst = dst[:0]
	for z, zs := range t.zones {
		if zs.count > 0 {
			dst = append(dst, ZoneConns{Zone: z, Conns: zs.count})
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Zone < dst[j].Zone })
	return dst
}
