package conntrack

import (
	"testing"

	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// TestWheelExpiresIdleWithoutSweep: with wheel expiry enabled an idle
// connection is removed by its timer — no Sweep, no lookup needed.
func TestWheelExpiresIdleWithoutSweep(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Timeouts.SynSent = 10 * sim.Millisecond
	ct.EnableWheelExpiry(true)

	ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn), 1, true, NAT{})
	if ct.Len() != 1 {
		t.Fatalf("len = %d, want 1", ct.Len())
	}
	eng.RunUntil(20 * sim.Millisecond)
	if ct.Len() != 0 || ct.Expired != 1 {
		t.Fatalf("len=%d expired=%d after timeout, want 0/1", ct.Len(), ct.Expired)
	}
}

// TestWheelLazyRearmKeepsActive: traffic refreshes only the expiry stamp;
// when the stale timer fires it must re-arm for the refreshed deadline
// instead of killing the active connection.
func TestWheelLazyRearmKeepsActive(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Timeouts = Timeouts{SynSent: 50 * sim.Millisecond, Established: 50 * sim.Millisecond,
		UDP: 50 * sim.Millisecond, Fin: 50 * sim.Millisecond}
	ct.EnableWheelExpiry(true)
	handshake(ct, 1, 1000, 80)

	// Refresh at 20ms and 40ms; the original 50ms deadline passes with
	// the connection active.
	for _, at := range []sim.Time{20 * sim.Millisecond, 40 * sim.Millisecond} {
		eng.ScheduleAt(at, func() {
			ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck), 1, false, NAT{})
		})
	}
	eng.RunUntil(70 * sim.Millisecond)
	if ct.Len() != 1 {
		t.Fatal("active connection expired despite refreshes")
	}
	// Idle from 40ms: gone once 40ms + 50ms passes.
	eng.RunUntil(120 * sim.Millisecond)
	if ct.Len() != 0 {
		t.Fatal("idle connection survived its refreshed deadline")
	}
}

// TestEnableWheelOnExistingTable: flipping wheel expiry on arms a timer
// for every connection already in the table.
func TestEnableWheelOnExistingTable(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Timeouts.SynSent = 10 * sim.Millisecond
	fillConns(ct, 1, 3)

	ct.EnableWheelExpiry(true)
	eng.RunUntil(30 * sim.Millisecond)
	if ct.Len() != 0 || ct.Expired != 3 {
		t.Fatalf("len=%d expired=%d, want all pre-existing connections wheel-expired",
			ct.Len(), ct.Expired)
	}
}

// TestWheelDisableStopsTimers: turning the wheel off leaves removal to
// lookups and sweeps again, with no timer firing afterward.
func TestWheelDisableStopsTimers(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Timeouts.SynSent = 10 * sim.Millisecond
	ct.EnableWheelExpiry(true)
	fillConns(ct, 1, 2)
	ct.EnableWheelExpiry(false)

	eng.RunUntil(30 * sim.Millisecond)
	if ct.Len() != 2 {
		t.Fatalf("len = %d with wheel off, want 2 (expiry back to lazy)", ct.Len())
	}
	if n := ct.Sweep(); n != 2 {
		t.Fatalf("sweep removed %d, want 2", n)
	}
}
