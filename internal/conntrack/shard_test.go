package conntrack

import (
	"testing"

	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// fillConns commits n distinct TCP connections (varying source IP and
// port) into zone and returns their original-direction tuples.
func fillConns(ct *Table, zone uint16, n int) []Tuple {
	tuples := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		src := hdr.MakeIP4(10, byte(i>>16), byte(i>>8), byte(i))
		sport := uint16(1024 + i%40000)
		p := tcpPkt(src, ipB, sport, 80, hdr.TCPSyn)
		ct.Process(p, zone, true, NAT{})
		tu, _ := TupleOf(p)
		tuples = append(tuples, tu)
	}
	return tuples
}

// TestShardDistribution: the tuple hash must spread connections across
// shards — no empty shard and none grossly over mean with a few thousand
// entries.
func TestShardDistribution(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	const n = 4096
	fillConns(ct, 1, n)

	sizes := ct.ShardSizes(nil)
	if len(sizes) != DefaultShards {
		t.Fatalf("shards = %d, want %d", len(sizes), DefaultShards)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	// Each connection is indexed under both directions.
	if total != 2*n {
		t.Fatalf("total indexed keys = %d, want %d", total, 2*n)
	}
	mean := total / len(sizes)
	for i, s := range sizes {
		if s == 0 {
			t.Fatalf("shard %d empty", i)
		}
		if s > 2*mean || s < mean/2 {
			t.Fatalf("shard %d holds %d keys, mean %d — hash imbalance", i, s, mean)
		}
	}
}

// TestSetShardsRepartition: changing the shard count must rehash every
// entry with nothing lost, at any count including 1.
func TestSetShardsRepartition(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	const n = 512
	tuples := fillConns(ct, 1, n)

	for _, shards := range []int{32, 1, 8} {
		ct.SetShards(shards)
		if got := ct.NumShards(); got != shards {
			t.Fatalf("NumShards = %d, want %d", got, shards)
		}
		if ct.Len() != n {
			t.Fatalf("len = %d after SetShards(%d), want %d", ct.Len(), shards, n)
		}
		for _, tu := range tuples {
			if _, ok := ct.Find(1, tu); !ok {
				t.Fatalf("connection %s lost repartitioning to %d shards", tu, shards)
			}
			if _, ok := ct.Find(1, tu.Reverse()); !ok {
				t.Fatalf("reply key of %s lost repartitioning to %d shards", tu, shards)
			}
		}
	}
}

// TestShardLookupCounting: per-shard lookup counters must account for
// every hash probe, and sum across shards regardless of the count.
func TestShardLookupCounting(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	ct.SetShards(1)
	fillConns(ct, 1, 16)

	before := ct.ShardLookups(nil)[0]
	for i := 0; i < 50; i++ {
		ct.Process(tcpPkt(hdr.MakeIP4(10, 0, 0, 0), ipB, 1024, 80, hdr.TCPAck), 1, false, NAT{})
	}
	after := ct.ShardLookups(nil)[0]
	if after-before < 50 {
		t.Fatalf("single shard counted %d lookups for 50 packets", after-before)
	}
}

// TestConnsPerZone: the per-zone breakdown is sorted by zone and omits
// empty zones.
func TestConnsPerZone(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	for i, zone := range []uint16{9, 2, 9, 2, 9} {
		ct.Process(tcpPkt(ipA, ipB, uint16(2000+i), 80, hdr.TCPSyn), zone, true, NAT{})
	}
	got := ct.ConnsPerZone(nil)
	want := []ZoneConns{{Zone: 2, Conns: 2}, {Zone: 9, Conns: 3}}
	if len(got) != len(want) {
		t.Fatalf("zones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zones = %v, want %v", got, want)
		}
	}
}
