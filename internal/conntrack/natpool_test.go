package conntrack

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

var natIP = hdr.MakeIP4(192, 0, 2, 1)

func snatRange(lo, hi uint16) NAT {
	return NAT{Kind: SNAT, Addr: natIP, PortLo: lo, PortHi: hi}
}

func findConn(t *testing.T, ct *Table, zone, sport, dport uint16) *Conn {
	t.Helper()
	tu, _ := TupleOf(tcpPkt(ipA, ipB, sport, dport, hdr.TCPAck))
	c, ok := ct.Find(zone, tu)
	if !ok {
		t.Fatalf("connection %d->%d not found", sport, dport)
	}
	return c
}

// TestNATPortDeterministicAllocation: the next-fit rotor hands out ports
// in ascending wrap-around order — same commits, same ports, every run.
func TestNATPortDeterministicAllocation(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	for i, want := range []uint16{40000, 40001, 40002} {
		sport := uint16(1000 + i)
		ct.Process(tcpPkt(ipA, ipB, sport, 80, hdr.TCPSyn), 1, true, snatRange(40000, 40003))
		if got := findConn(t, ct, 1, sport, 80).NAT.Port; got != want {
			t.Fatalf("conn %d allocated port %d, want %d", i, got, want)
		}
	}
}

// TestNATReplyTranslation: the original direction is rewritten to the
// translated address:port; a reply addressed to the translation comes back
// rewritten to the private endpoint.
func TestNATReplyTranslation(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	orig := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn)
	ct.Process(orig, 1, true, snatRange(40000, 40003))

	ip, _ := hdr.ParseIPv4(orig.Data[hdr.EthernetSize:])
	tcp, _ := hdr.ParseTCP(orig.Data[hdr.EthernetSize+ip.HeaderLen:])
	if ip.Src != natIP || tcp.SrcPort != 40000 {
		t.Fatalf("forward rewrite = %v:%d, want %v:40000", ip.Src, tcp.SrcPort, natIP)
	}

	reply := tcpPkt(ipB, natIP, 80, 40000, hdr.TCPSyn|hdr.TCPAck)
	ct.Process(reply, 1, false, NAT{})
	if reply.CtState&packet.CtReply == 0 {
		t.Fatalf("reply classified %s, want reply direction", reply.CtState)
	}
	rip, _ := hdr.ParseIPv4(reply.Data[hdr.EthernetSize:])
	rtcp, _ := hdr.ParseTCP(reply.Data[hdr.EthernetSize+rip.HeaderLen:])
	if rip.Dst != ipA || rtcp.DstPort != 1000 {
		t.Fatalf("reply rewrite = %v:%d, want %v:1000", rip.Dst, rtcp.DstPort, ipA)
	}
}

// TestNATExhaustionEvictsThenRejects: with the range exhausted by
// embryonic holders the oldest is evicted and its port recycled; once
// every holder is established, the commit is deterministically refused.
func TestNATExhaustionEvictsThenRejects(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	nat := snatRange(41000, 41001)

	// Two embryonic holders exhaust the range.
	ct.Process(tcpPkt(ipA, ipB, 2000, 80, hdr.TCPSyn), 1, true, nat)
	ct.Process(tcpPkt(ipA, ipB, 2001, 80, hdr.TCPSyn), 1, true, nat)

	// Third commit evicts the oldest embryonic holder for its port.
	p := tcpPkt(ipA, ipB, 2002, 80, hdr.TCPSyn)
	ct.Process(p, 1, true, nat)
	if p.CtState&packet.CtNew == 0 {
		t.Fatalf("commit classified %s, want new via port eviction", p.CtState)
	}
	if ct.NATPortEvictions != 1 || ct.Evicted != 1 {
		t.Fatalf("port-evictions=%d evicted=%d, want 1/1", ct.NATPortEvictions, ct.Evicted)
	}
	tu0, _ := TupleOf(tcpPkt(ipA, ipB, 2000, 80, hdr.TCPAck))
	if _, ok := ct.Find(1, tu0); ok {
		t.Fatal("oldest port holder must be the one evicted")
	}

	// Establish both holders: no evictable victim remains.
	for _, sport := range []uint16{2001, 2002} {
		c := findConn(t, ct, 1, sport, 80)
		ct.Process(tcpPkt(ipB, natIP, 80, c.NAT.Port, hdr.TCPSyn|hdr.TCPAck), 1, false, NAT{})
		ct.Process(tcpPkt(ipA, ipB, sport, 80, hdr.TCPAck), 1, false, NAT{})
	}
	p = tcpPkt(ipA, ipB, 2003, 80, hdr.TCPSyn)
	ct.Process(p, 1, true, nat)
	if p.CtState&packet.CtInvalid == 0 {
		t.Fatalf("exhausted commit classified %s, want invalid", p.CtState)
	}
	if ct.NATExhausted != 1 || ct.Len() != 2 {
		t.Fatalf("nat-exhausted=%d len=%d, want 1/2", ct.NATExhausted, ct.Len())
	}
}

// TestNATPortReleaseOnRemoval: a removed connection's port returns to the
// pool and is re-allocated without an eviction.
func TestNATPortReleaseOnRemoval(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	nat := snatRange(42000, 42000) // single-port pool

	ct.Process(tcpPkt(ipA, ipB, 3000, 80, hdr.TCPSyn), 1, true, nat)
	ct.Process(tcpPkt(ipA, ipB, 3000, 80, hdr.TCPRst), 1, false, NAT{})
	eng.RunUntil(ct.Timeouts.Fin + sim.Second)
	ct.Sweep()
	if ct.Len() != 0 {
		t.Fatalf("len = %d after sweep, want 0", ct.Len())
	}

	ct.Process(tcpPkt(ipA, ipB, 3001, 80, hdr.TCPSyn), 1, true, nat)
	c := findConn(t, ct, 1, 3001, 80)
	if c.NAT.Port != 42000 || ct.NATPortEvictions != 0 || ct.NATExhausted != 0 {
		t.Fatalf("port=%d evictions=%d exhausted=%d, want released port reused cleanly",
			c.NAT.Port, ct.NATPortEvictions, ct.NATExhausted)
	}
}
