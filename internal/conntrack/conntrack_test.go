package conntrack

import (
	"testing"
	"testing/quick"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
	ipA  = hdr.MakeIP4(10, 0, 0, 1)
	ipB  = hdr.MakeIP4(10, 0, 0, 2)
)

func tcpPkt(src, dst hdr.IP4, sport, dport uint16, flags uint8) *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macA, macB).IPv4H(src, dst, 64).
		TCPH(sport, dport, 1, 0, flags).PadTo(64).Build())
}

func udpPkt(src, dst hdr.IP4, sport, dport uint16) *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macA, macB).IPv4H(src, dst, 64).
		UDPH(sport, dport).PayloadLen(8).Build())
}

func TestTupleExtractionAndReverse(t *testing.T) {
	tu, ok := TupleOf(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn))
	if !ok {
		t.Fatal("tuple extraction failed")
	}
	if tu.SrcIP != ipA || tu.DstIP != ipB || tu.SrcPort != 1000 || tu.DstPort != 80 || tu.Proto != hdr.IPProtoTCP {
		t.Fatalf("tuple = %s", tu)
	}
	r := tu.Reverse()
	if r.SrcIP != ipB || r.DstPort != 1000 {
		t.Fatalf("reverse = %s", r)
	}
	// ARP is untrackable.
	arp := packet.New(hdr.NewBuilder().Eth(macA, hdr.Broadcast).
		ARPH(hdr.ARPRequest, macA, ipA, hdr.MAC{}, ipB).Build())
	if _, ok := TupleOf(arp); ok {
		t.Fatal("ARP must not produce a tuple")
	}
}

func TestTCPHandshakeStateMachine(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)

	// SYN: new, committed.
	syn := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn)
	ct.Process(syn, 1, true, NAT{})
	if syn.CtState&packet.CtNew == 0 || syn.CtState&packet.CtTracked == 0 {
		t.Fatalf("SYN state = %s", syn.CtState)
	}
	if ct.Len() != 1 || ct.ZoneCount(1) != 1 {
		t.Fatalf("len=%d zone=%d", ct.Len(), ct.ZoneCount(1))
	}

	// SYN-ACK (reply direction).
	synack := tcpPkt(ipB, ipA, 80, 1000, hdr.TCPSyn|hdr.TCPAck)
	ct.Process(synack, 1, false, NAT{})
	if synack.CtState&packet.CtReply == 0 {
		t.Fatalf("SYN-ACK state = %s", synack.CtState)
	}

	// ACK: established.
	ack := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck)
	ct.Process(ack, 1, false, NAT{})
	tu, _ := TupleOf(ack)
	c, ok := ct.Find(1, tu)
	if !ok || c.State != StateEstablished {
		t.Fatalf("conn state = %v", c)
	}

	// Subsequent data is flagged established.
	data := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck|hdr.TCPPsh)
	ct.Process(data, 1, false, NAT{})
	if data.CtState&packet.CtEstablished == 0 {
		t.Fatalf("data state = %s", data.CtState)
	}
}

func TestMidStreamPacketInvalid(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Loose = false // strict mode: no mid-stream pickup
	stray := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck)
	ct.Process(stray, 1, true, NAT{})
	if stray.CtState&packet.CtInvalid == 0 {
		t.Fatalf("mid-stream state = %s", stray.CtState)
	}
	if ct.Len() != 0 {
		t.Fatal("invalid packet must not create a connection")
	}
}

func TestUncommittedNewNotInstalled(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	syn := tcpPkt(ipA, ipB, 1, 2, hdr.TCPSyn)
	ct.Process(syn, 1, false, NAT{})
	if syn.CtState&packet.CtNew == 0 {
		t.Fatal("uncommitted SYN must classify as new")
	}
	if ct.Len() != 0 {
		t.Fatal("uncommitted connection must not install")
	}
}

func TestZonesAreIndependent(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Loose = false
	ct.Process(tcpPkt(ipA, ipB, 1, 2, hdr.TCPSyn), 1, true, NAT{})
	// Same 5-tuple, different zone: unknown there.
	p := tcpPkt(ipA, ipB, 1, 2, hdr.TCPAck)
	ct.Process(p, 2, false, NAT{})
	if p.CtState&packet.CtInvalid == 0 {
		t.Fatalf("zone 2 must not see zone 1 state: %s", p.CtState)
	}
	if ct.ZoneCount(1) != 1 || ct.ZoneCount(2) != 0 {
		t.Fatal("zone counts wrong")
	}
}

func TestZoneLimit(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.SetZoneLimit(5, 2)
	for i := 0; i < 4; i++ {
		p := tcpPkt(ipA, ipB, uint16(1000+i), 80, hdr.TCPSyn)
		ct.Process(p, 5, true, NAT{})
		if i < 2 && p.CtState&packet.CtInvalid != 0 {
			t.Fatalf("conn %d should be admitted", i)
		}
		if i >= 2 && p.CtState&packet.CtInvalid == 0 {
			t.Fatalf("conn %d should hit the zone limit", i)
		}
	}
	if ct.ZoneCount(5) != 2 || ct.LimitHits != 2 {
		t.Fatalf("zone=%d hits=%d", ct.ZoneCount(5), ct.LimitHits)
	}
	// Other zones unaffected.
	p := tcpPkt(ipA, ipB, 9999, 80, hdr.TCPSyn)
	ct.Process(p, 6, true, NAT{})
	if p.CtState&packet.CtInvalid != 0 {
		t.Fatal("zone 6 must not be limited")
	}
}

func TestUDPEstablishedOnReply(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Process(udpPkt(ipA, ipB, 5000, 53), 1, true, NAT{})
	reply := udpPkt(ipB, ipA, 53, 5000)
	ct.Process(reply, 1, false, NAT{})
	if reply.CtState&packet.CtReply == 0 {
		t.Fatalf("reply state = %s", reply.CtState)
	}
	tu, _ := TupleOf(udpPkt(ipA, ipB, 5000, 53))
	if c, _ := ct.Find(1, tu); c.State != StateEstablished {
		t.Fatalf("UDP state = %s", c.State)
	}
}

func TestExpiry(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Process(udpPkt(ipA, ipB, 1, 2), 1, true, NAT{})
	if ct.Len() != 1 {
		t.Fatal("install failed")
	}
	// Advance beyond the UDP timeout.
	eng.Schedule(TimeoutUDP+sim.Second, func() {})
	eng.Run()
	if n := ct.Sweep(); n != 1 {
		t.Fatalf("swept %d", n)
	}
	if ct.Len() != 0 || ct.ZoneCount(1) != 0 {
		t.Fatal("expired connection lingers")
	}
	// A new packet for it is new again.
	p := udpPkt(ipA, ipB, 1, 2)
	ct.Process(p, 1, false, NAT{})
	if p.CtState&packet.CtNew == 0 {
		t.Fatalf("post-expiry state = %s", p.CtState)
	}
}

func TestRSTClosesConnection(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Process(tcpPkt(ipA, ipB, 1, 2, hdr.TCPSyn), 1, true, NAT{})
	rst := tcpPkt(ipA, ipB, 1, 2, hdr.TCPRst)
	ct.Process(rst, 1, false, NAT{})
	tu, _ := TupleOf(rst)
	if c, _ := ct.Find(1, tu); c.State != StateClosed {
		t.Fatalf("state after RST = %s", c.State)
	}
}

func TestSNATRewritesAndTranslatesReplies(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	public := hdr.MakeIP4(192, 0, 2, 1)

	// Outbound packet gets its source rewritten.
	out := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn)
	ct.Process(out, 1, true, NAT{Kind: SNAT, Addr: public, Port: 40000})
	eth, _ := hdr.ParseEthernet(out.Data)
	ip, _ := hdr.ParseIPv4(out.Data[eth.HeaderLen:])
	if ip.Src != public {
		t.Fatalf("post-SNAT src = %s", ip.Src)
	}
	tcp, _ := hdr.ParseTCP(out.Data[eth.HeaderLen+ip.HeaderLen:])
	if tcp.SrcPort != 40000 {
		t.Fatalf("post-SNAT sport = %d", tcp.SrcPort)
	}
	if !hdr.VerifyL4Checksum(ip.Src, ip.Dst, hdr.IPProtoTCP, out.Data[eth.HeaderLen+ip.HeaderLen:]) {
		t.Fatal("NAT must fix the L4 checksum")
	}

	// The reply addressed to the public tuple finds the connection and
	// is translated back to the private address.
	reply := tcpPkt(ipB, public, 80, 40000, hdr.TCPSyn|hdr.TCPAck)
	ct.Process(reply, 1, false, NAT{})
	if reply.CtState&packet.CtReply == 0 {
		t.Fatalf("reply not recognized: %s", reply.CtState)
	}
	eth2, _ := hdr.ParseEthernet(reply.Data)
	ip2, _ := hdr.ParseIPv4(reply.Data[eth2.HeaderLen:])
	if ip2.Dst != ipA {
		t.Fatalf("reply dst = %s, want %s (de-NATed)", ip2.Dst, ipA)
	}
}

func TestDNAT(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	backend := hdr.MakeIP4(10, 1, 0, 5)
	in := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn)
	ct.Process(in, 1, true, NAT{Kind: DNAT, Addr: backend})
	eth, _ := hdr.ParseEthernet(in.Data)
	ip, _ := hdr.ParseIPv4(in.Data[eth.HeaderLen:])
	if ip.Dst != backend {
		t.Fatalf("post-DNAT dst = %s", ip.Dst)
	}
}

func TestSetMark(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	p := tcpPkt(ipA, ipB, 1, 2, hdr.TCPSyn)
	ct.Process(p, 1, true, NAT{})
	tu, _ := TupleOf(p)
	if !ct.SetMark(1, tu, 0xbeef) {
		t.Fatal("SetMark failed")
	}
	next := tcpPkt(ipA, ipB, 1, 2, hdr.TCPAck)
	ct.Process(next, 1, false, NAT{})
	if next.CtMark != 0xbeef {
		t.Fatalf("mark = %#x", next.CtMark)
	}
	if ct.SetMark(1, Tuple{SrcIP: 9}, 1) {
		t.Fatal("SetMark on missing conn must fail")
	}
}

func TestLooseMidStreamPickup(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	// Default Linux behaviour: a mid-stream ACK creates an established
	// connection.
	ack := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck)
	ct.Process(ack, 1, true, NAT{})
	if ack.CtState&packet.CtEstablished == 0 {
		t.Fatalf("loose pickup state = %s", ack.CtState)
	}
	tu, _ := TupleOf(ack)
	c, ok := ct.Find(1, tu)
	if !ok || c.State != StateEstablished {
		t.Fatalf("conn = %+v", c)
	}
}

func TestManyConnectionsStatsAndSweep(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	for i := 0; i < 1000; i++ {
		ct.Process(udpPkt(hdr.IP4(uint32(ipA)+uint32(i%50)), ipB, uint16(1000+i), 53), 3, true, NAT{})
	}
	if ct.Created != 1000 || ct.ZoneCount(3) != 1000 {
		t.Fatalf("created=%d zone=%d", ct.Created, ct.ZoneCount(3))
	}
	eng.Schedule(2*TimeoutUDP, func() {})
	eng.Run()
	if n := ct.Sweep(); n != 1000 {
		t.Fatalf("swept %d", n)
	}
}

func TestTupleReverseProperty(t *testing.T) {
	// Reverse is an involution and never equals the original for
	// asymmetric tuples.
	f := func(srcIP, dstIP uint32, sport, dport uint16) bool {
		tu := Tuple{SrcIP: hdr.IP4(srcIP), DstIP: hdr.IP4(dstIP),
			Proto: hdr.IPProtoTCP, SrcPort: sport, DstPort: dport}
		if tu.Reverse().Reverse() != tu {
			return false
		}
		if srcIP != dstIP || sport != dport {
			return tu.Reverse() != tu
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConnLookupSymmetryProperty(t *testing.T) {
	// Property: after committing any UDP flow, both directions find the
	// same connection.
	f := func(srcIP, dstIP uint32, sport, dport uint16) bool {
		if srcIP == dstIP && sport == dport {
			return true // degenerate self-flow
		}
		eng := sim.NewEngine(1)
		ct := NewTable(eng)
		p := udpPkt(hdr.IP4(srcIP), hdr.IP4(dstIP), sport, dport)
		ct.Process(p, 1, true, NAT{})
		tu, ok := TupleOf(p)
		if !ok {
			return true // unparseable degenerate addressing
		}
		c1, ok1 := ct.Find(1, tu)
		c2, ok2 := ct.Find(1, tu.Reverse())
		return ok1 && ok2 && c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
