package conntrack

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// handshake drives ipA:sport -> ipB:dport through SYN / SYN-ACK / ACK to
// the established state in zone.
func handshake(ct *Table, zone, sport, dport uint16) {
	ct.Process(tcpPkt(ipA, ipB, sport, dport, hdr.TCPSyn), zone, true, NAT{})
	ct.Process(tcpPkt(ipB, ipA, dport, sport, hdr.TCPSyn|hdr.TCPAck), zone, false, NAT{})
	ct.Process(tcpPkt(ipA, ipB, sport, dport, hdr.TCPAck), zone, false, NAT{})
}

func connState(t *testing.T, ct *Table, zone, sport, dport uint16) State {
	t.Helper()
	tu, _ := TupleOf(tcpPkt(ipA, ipB, sport, dport, hdr.TCPAck))
	c, ok := ct.Find(zone, tu)
	if !ok {
		t.Fatalf("connection %d->%d not found", sport, dport)
	}
	return c.State
}

// TestRSTClosesEveryState sends an RST at each point in the connection's
// life and checks it lands in StateClosed regardless of the state or the
// direction the RST arrives from.
func TestRSTClosesEveryState(t *testing.T) {
	cases := []struct {
		name  string
		setup func(ct *Table) // drive 1000->80 to the target state
		reply bool            // RST direction
	}{
		{"syn-sent/orig", func(ct *Table) {
			ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn), 1, true, NAT{})
		}, false},
		{"syn-sent/reply", func(ct *Table) {
			ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn), 1, true, NAT{})
		}, true},
		{"syn-recv/orig", func(ct *Table) {
			ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn), 1, true, NAT{})
			ct.Process(tcpPkt(ipB, ipA, 80, 1000, hdr.TCPSyn|hdr.TCPAck), 1, false, NAT{})
		}, false},
		{"established/orig", func(ct *Table) { handshake(ct, 1, 1000, 80) }, false},
		{"established/reply", func(ct *Table) { handshake(ct, 1, 1000, 80) }, true},
		{"fin-wait/orig", func(ct *Table) {
			handshake(ct, 1, 1000, 80)
			ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPFin|hdr.TCPAck), 1, false, NAT{})
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ct := NewTable(sim.NewEngine(1))
			tc.setup(ct)
			rst := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPRst)
			if tc.reply {
				rst = tcpPkt(ipB, ipA, 80, 1000, hdr.TCPRst)
			}
			ct.Process(rst, 1, false, NAT{})
			if got := connState(t, ct, 1, 1000, 80); got != StateClosed {
				t.Fatalf("after RST state = %v, want closed", got)
			}
		})
	}
}

// TestSimultaneousClose exercises both sides FIN-ing at once: the stray
// ACKs that follow must keep the record on the short closing timeout, not
// re-pin it for the SYN timeout.
func TestSimultaneousClose(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	handshake(ct, 1, 1000, 80)

	ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPFin|hdr.TCPAck), 1, false, NAT{})
	ct.Process(tcpPkt(ipB, ipA, 80, 1000, hdr.TCPFin|hdr.TCPAck), 1, false, NAT{})
	// The crossing final ACKs land while the connection is closing.
	ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck), 1, false, NAT{})
	ct.Process(tcpPkt(ipB, ipA, 80, 1000, hdr.TCPAck), 1, false, NAT{})
	if got := connState(t, ct, 1, 1000, 80); got != StateFinWait {
		t.Fatalf("after simultaneous close state = %v, want fin-wait", got)
	}

	// The record must expire on the Fin timeout despite the trailing ACKs:
	// past Fin but well before SynSent it is already gone.
	eng.RunUntil(ct.Timeouts.Fin + sim.Second)
	tu, _ := TupleOf(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck))
	if _, ok := ct.Find(1, tu); ok {
		t.Fatal("closing connection still present after Fin timeout")
	}
}

// TestRetransmittedSYNKeepsEstablished: a duplicate SYN arriving on an
// established connection (delayed retransmit) must refresh it, not bounce
// the state machine back to new.
func TestRetransmittedSYNKeepsEstablished(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	handshake(ct, 1, 1000, 80)

	dup := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn)
	ct.Process(dup, 1, false, NAT{})
	if got := connState(t, ct, 1, 1000, 80); got != StateEstablished {
		t.Fatalf("after retransmitted SYN state = %v, want established", got)
	}
	if dup.CtState&packet.CtEstablished == 0 || dup.CtState&packet.CtNew != 0 {
		t.Fatalf("retransmitted SYN classified %s, want established", dup.CtState)
	}
	if ct.Created != 1 {
		t.Fatalf("created = %d, want 1 (no re-creation)", ct.Created)
	}
}

// TestFreshSYNReopensClosedConnection: after an RST, a genuinely fresh SYN
// on the same tuple must retire the dead record and start a new tracked
// connection (netfilter's TIME_WAIT reuse), not classify as invalid.
func TestFreshSYNReopensClosedConnection(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	handshake(ct, 1, 1000, 80)
	ct.Process(tcpPkt(ipB, ipA, 80, 1000, hdr.TCPRst), 1, false, NAT{})
	if got := connState(t, ct, 1, 1000, 80); got != StateClosed {
		t.Fatalf("state = %v, want closed", got)
	}

	syn := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn)
	ct.Process(syn, 1, true, NAT{})
	if syn.CtState&packet.CtNew == 0 || syn.CtState&packet.CtInvalid != 0 {
		t.Fatalf("reopening SYN classified %s, want new", syn.CtState)
	}
	if got := connState(t, ct, 1, 1000, 80); got != StateSynSent {
		t.Fatalf("reopened state = %v, want syn-sent", got)
	}
	if ct.Created != 2 || ct.Expired != 1 || ct.Len() != 1 {
		t.Fatalf("created=%d expired=%d len=%d, want 2/1/1", ct.Created, ct.Expired, ct.Len())
	}
}

// TestConntrackEstablishedLookupZeroAlloc pins the hot path: processing a
// packet of an established connection (lookup + state machine + LRU touch)
// must not allocate.
func TestConntrackEstablishedLookupZeroAlloc(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	handshake(ct, 1, 1000, 80)
	p := tcpPkt(ipA, ipB, 1000, 80, hdr.TCPAck|hdr.TCPPsh)
	if n := testing.AllocsPerRun(200, func() {
		ct.Process(p, 1, true, NAT{})
	}); n != 0 {
		t.Fatalf("established-connection Process allocates %.1f/op, want 0", n)
	}
}
