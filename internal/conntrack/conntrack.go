// Package conntrack implements the userspace connection tracker OVS needed
// once the datapath left the kernel: Section 4 notes NSX depends on
// "connection tracking for firewalling in the kernel's netfilter subsystem"
// and that OVS "uses its own userspace implementations of these features".
//
// The tracker follows the OVS/netfilter model: connections are keyed by
// 5-tuple within a zone (zones keep different virtual networks' flows
// separate), carry a TCP state machine, support SNAT/DNAT with real header
// rewriting, and enforce per-zone connection limits — the feature whose
// kernel/out-of-tree double implementation Section 2.1.1 uses as a case
// study.
package conntrack

import (
	"fmt"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// Tuple is a unidirectional 5-tuple.
type Tuple struct {
	SrcIP   hdr.IP4
	DstIP   hdr.IP4
	Proto   hdr.IPProto
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the reply-direction tuple.
func (t Tuple) Reverse() Tuple {
	return Tuple{SrcIP: t.DstIP, DstIP: t.SrcIP, Proto: t.Proto, SrcPort: t.DstPort, DstPort: t.SrcPort}
}

// String formats the tuple for diagnostics.
func (t Tuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", t.SrcIP, t.SrcPort, t.DstIP, t.DstPort, t.Proto)
}

// State is the connection's protocol state.
type State int

// Connection states (a condensed netfilter TCP state machine plus the
// two-step UDP/ICMP model).
const (
	StateNew State = iota
	StateSynSent
	StateSynRecv
	StateEstablished
	StateFinWait
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateSynSent:
		return "syn-sent"
	case StateSynRecv:
		return "syn-recv"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateClosed:
		return "closed"
	default:
		return "?"
	}
}

// Timeouts per state, in virtual time. They are compressed relative to real
// netfilter defaults so simulations can exercise expiry without hours of
// virtual time; the ordering (established >> transient) is preserved.
const (
	TimeoutSynSent     = 30 * sim.Second
	TimeoutEstablished = 600 * sim.Second
	TimeoutUDP         = 60 * sim.Second
	TimeoutFin         = 10 * sim.Second
)

// NAT describes a translation to apply at commit time.
type NAT struct {
	// SNAT: rewrite source address/port on the original direction
	// (destination on replies). DNAT is the converse.
	Kind NATKind
	Addr hdr.IP4
	Port uint16 // 0 keeps the original port
}

// NATKind discriminates source vs destination translation.
type NATKind int

// NAT kinds.
const (
	NATNone NATKind = iota
	SNAT
	DNAT
)

// Conn is one tracked connection.
type Conn struct {
	Zone  uint16
	Orig  Tuple
	State State
	Mark  uint32
	NAT   NAT

	created sim.Time
	expires sim.Time
	// packets/bytes per direction.
	PktsOrig, PktsReply uint64
}

type connKey struct {
	zone  uint16
	tuple Tuple
}

// Table is the connection table.
type Table struct {
	eng   *sim.Engine
	conns map[connKey]*Conn
	// reverse maps the reply-direction (post-NAT) tuple to the conn.
	perZone map[uint16]int
	limits  map[uint16]int

	// Loose enables mid-stream TCP pickup (nf_conntrack_tcp_loose,
	// enabled by default in Linux): a non-SYN packet with no known
	// connection creates one in the established state instead of being
	// marked invalid.
	Loose bool

	// Stats.
	Created   uint64
	Expired   uint64
	LimitHits uint64
}

// NewTable builds an empty table on the engine's clock.
func NewTable(eng *sim.Engine) *Table {
	return &Table{
		eng:     eng,
		conns:   make(map[connKey]*Conn),
		perZone: make(map[uint16]int),
		limits:  make(map[uint16]int),
		Loose:   true,
	}
}

// SetZoneLimit caps concurrent connections in zone (0 removes the cap),
// the per-zone connection limiting feature of Section 2.1.1.
func (t *Table) SetZoneLimit(zone uint16, limit int) {
	if limit <= 0 {
		delete(t.limits, zone)
		return
	}
	t.limits[zone] = limit
}

// Len returns the number of live connections (expired entries may linger
// until touched or swept).
func (t *Table) Len() int { return len(t.conns) / 2 }

// ZoneCount returns live connections in a zone.
func (t *Table) ZoneCount(zone uint16) int { return t.perZone[zone] }

// TupleOf extracts the conntrack tuple from an IPv4 packet, reporting false
// for non-IPv4 or fragmented-beyond-first packets.
func TupleOf(p *packet.Packet) (Tuple, bool) {
	var tu Tuple
	d := p.Data
	eth, err := hdr.ParseEthernet(d)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return tu, false
	}
	ip, err := hdr.ParseIPv4(d[eth.HeaderLen:])
	if err != nil || ip.FragOffset != 0 {
		return tu, false
	}
	tu.SrcIP, tu.DstIP, tu.Proto = ip.Src, ip.Dst, ip.Proto
	l4 := d[eth.HeaderLen+ip.HeaderLen:]
	switch ip.Proto {
	case hdr.IPProtoTCP:
		h, err := hdr.ParseTCP(l4)
		if err != nil {
			return tu, false
		}
		tu.SrcPort, tu.DstPort = h.SrcPort, h.DstPort
	case hdr.IPProtoUDP:
		h, err := hdr.ParseUDP(l4)
		if err != nil {
			return tu, false
		}
		tu.SrcPort, tu.DstPort = h.SrcPort, h.DstPort
	case hdr.IPProtoICMP:
		h, err := hdr.ParseICMP(l4)
		if err != nil {
			return tu, false
		}
		tu.SrcPort, tu.DstPort = h.ID, h.ID
	default:
		return tu, false
	}
	return tu, true
}

// Process runs the packet through the tracker in the given zone: the ct()
// datapath action. It sets the packet's conntrack metadata (CtState, CtZone,
// CtMark). With commit set, a new connection is installed (subject to the
// zone limit); without it, new connections are only classified, as in OVS
// where commit happens on the firewall's allow rule.
func (t *Table) Process(p *packet.Packet, zone uint16, commit bool, nat NAT) {
	p.CtZone = zone
	tu, ok := TupleOf(p)
	if !ok {
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	now := t.eng.Now()

	var tcpFlags uint8
	if tu.Proto == hdr.IPProtoTCP {
		eth, _ := hdr.ParseEthernet(p.Data)
		ip, _ := hdr.ParseIPv4(p.Data[eth.HeaderLen:])
		tcp, _ := hdr.ParseTCP(p.Data[eth.HeaderLen+ip.HeaderLen:])
		tcpFlags = tcp.Flags
	}

	// Original direction?
	if c, ok := t.lookup(zone, tu); ok {
		reply := c.Orig != tu
		t.advance(c, tcpFlags, reply, now)
		p.CtState = packet.CtTracked
		p.CtMark = c.Mark
		switch c.State {
		case StateEstablished, StateFinWait:
			p.CtState |= packet.CtEstablished
		case StateSynSent, StateSynRecv, StateNew:
			if reply {
				p.CtState |= packet.CtEstablished
			} else {
				p.CtState |= packet.CtNew
			}
		case StateClosed:
			p.CtState |= packet.CtInvalid
		}
		if reply {
			p.CtState |= packet.CtReply
			c.PktsReply++
			t.applyNAT(p, c, true)
		} else {
			c.PktsOrig++
			t.applyNAT(p, c, false)
		}
		return
	}

	// New connection.
	p.CtState = packet.CtTracked | packet.CtNew
	midstream := tu.Proto == hdr.IPProtoTCP && tcpFlags&hdr.TCPSyn == 0
	if midstream && !t.Loose {
		// Mid-stream packet with no connection: invalid.
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	if midstream {
		// Loose pickup adopts the flow as already established.
		p.CtState = packet.CtTracked | packet.CtEstablished
	}
	if !commit {
		return
	}
	if limit, ok := t.limits[zone]; ok && t.perZone[zone] >= limit {
		t.LimitHits++
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	c := &Conn{Zone: zone, Orig: tu, State: StateNew, NAT: nat, created: now}
	switch {
	case midstream:
		c.State = StateEstablished
		c.expires = now + TimeoutEstablished
	case tu.Proto == hdr.IPProtoTCP:
		c.State = StateSynSent
		c.expires = now + TimeoutSynSent
	default:
		c.expires = now + TimeoutUDP
	}
	c.PktsOrig = 1
	t.install(c)
	t.Created++
	t.applyNAT(p, c, false)
}

// lookup finds the connection for tuple in zone, in either direction,
// dropping it if expired.
func (t *Table) lookup(zone uint16, tu Tuple) (*Conn, bool) {
	c, ok := t.conns[connKey{zone, tu}]
	if !ok {
		return nil, false
	}
	if t.eng.Now() >= c.expires {
		t.remove(c)
		t.Expired++
		return nil, false
	}
	return c, true
}

// Find returns the connection for a tuple in a zone without touching
// state (diagnostics, tests).
func (t *Table) Find(zone uint16, tu Tuple) (*Conn, bool) { return t.lookup(zone, tu) }

// SetMark sets the connection mark (the ct_mark field rules match on).
func (t *Table) SetMark(zone uint16, tu Tuple, mark uint32) bool {
	c, ok := t.lookup(zone, tu)
	if !ok {
		return false
	}
	c.Mark = mark
	return true
}

// advance runs the TCP (or UDP/ICMP) state machine for one packet.
func (t *Table) advance(c *Conn, tcpFlags uint8, reply bool, now sim.Time) {
	if c.Orig.Proto != hdr.IPProtoTCP {
		// UDP/ICMP: a reply establishes.
		if reply && c.State != StateEstablished {
			c.State = StateEstablished
		}
		c.expires = now + TimeoutUDP
		return
	}
	switch {
	case tcpFlags&hdr.TCPRst != 0:
		c.State = StateClosed
		c.expires = now + TimeoutFin
	case tcpFlags&hdr.TCPFin != 0:
		c.State = StateFinWait
		c.expires = now + TimeoutFin
	case c.State == StateSynSent && reply && tcpFlags&hdr.TCPSyn != 0 && tcpFlags&hdr.TCPAck != 0:
		c.State = StateSynRecv
		c.expires = now + TimeoutSynSent
	case c.State == StateSynRecv && !reply && tcpFlags&hdr.TCPAck != 0:
		c.State = StateEstablished
		c.expires = now + TimeoutEstablished
	case c.State == StateEstablished:
		c.expires = now + TimeoutEstablished
	default:
		c.expires = now + TimeoutSynSent
	}
}

// applyNAT rewrites packet headers per the connection's translation,
// recomputing checksums — the real work OVS had to reimplement in
// userspace.
func (t *Table) applyNAT(p *packet.Packet, c *Conn, reply bool) {
	if c.NAT.Kind == NATNone {
		return
	}
	eth, err := hdr.ParseEthernet(p.Data)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return
	}
	ipRaw := p.Data[eth.HeaderLen:]
	ip, err := hdr.ParseIPv4(ipRaw)
	if err != nil {
		return
	}
	l4 := ipRaw[ip.HeaderLen:]

	// Forward direction applies the translation; the reply direction
	// undoes it, restoring the original endpoint.
	var rewriteSrc bool
	var newAddr hdr.IP4
	var newPort uint16
	switch {
	case c.NAT.Kind == SNAT && !reply:
		rewriteSrc, newAddr, newPort = true, c.NAT.Addr, c.NAT.Port
	case c.NAT.Kind == SNAT && reply:
		rewriteSrc, newAddr, newPort = false, c.Orig.SrcIP, c.Orig.SrcPort
	case c.NAT.Kind == DNAT && !reply:
		rewriteSrc, newAddr, newPort = false, c.NAT.Addr, c.NAT.Port
	default: // DNAT reply
		rewriteSrc, newAddr, newPort = true, c.Orig.DstIP, c.Orig.DstPort
	}
	if rewriteSrc {
		ip.Src = newAddr
	} else {
		ip.Dst = newAddr
	}
	ip.SerializeTo(ipRaw)

	if newPort != 0 {
		switch ip.Proto {
		case hdr.IPProtoTCP, hdr.IPProtoUDP:
			if len(l4) >= 4 {
				portOff := 0
				if !rewriteSrc {
					portOff = 2
				}
				l4[portOff] = byte(newPort >> 8)
				l4[portOff+1] = byte(newPort)
			}
		}
	}
	switch ip.Proto {
	case hdr.IPProtoTCP:
		if len(l4) >= hdr.TCPMinSize {
			hdr.PutTCPChecksum(ip.Src, ip.Dst, l4)
		}
	case hdr.IPProtoUDP:
		if len(l4) >= hdr.UDPSize {
			hdr.PutUDPChecksum(ip.Src, ip.Dst, l4)
		}
	}
}

// install indexes the connection under both directions. The reply
// direction accounts for NAT: replies arrive addressed to the translated
// tuple.
func (t *Table) install(c *Conn) {
	t.conns[connKey{c.Zone, c.Orig}] = c
	t.conns[connKey{c.Zone, t.replyTuple(c)}] = c
	t.perZone[c.Zone]++
}

func (t *Table) remove(c *Conn) {
	delete(t.conns, connKey{c.Zone, c.Orig})
	delete(t.conns, connKey{c.Zone, t.replyTuple(c)})
	t.perZone[c.Zone]--
}

// replyTuple computes the tuple reply packets carry, after translation.
func (t *Table) replyTuple(c *Conn) Tuple {
	r := c.Orig.Reverse()
	switch c.NAT.Kind {
	case SNAT:
		r.DstIP = c.NAT.Addr
		if c.NAT.Port != 0 {
			r.DstPort = c.NAT.Port
		}
	case DNAT:
		r.SrcIP = c.NAT.Addr
		if c.NAT.Port != 0 {
			r.SrcPort = c.NAT.Port
		}
	}
	return r
}

// Sweep removes expired connections and returns the count removed.
func (t *Table) Sweep() int {
	now := t.eng.Now()
	var victims []*Conn
	seen := map[*Conn]bool{}
	for _, c := range t.conns {
		if now >= c.expires && !seen[c] {
			seen[c] = true
			victims = append(victims, c)
		}
	}
	for _, c := range victims {
		t.remove(c)
		t.Expired++
	}
	return len(victims)
}
