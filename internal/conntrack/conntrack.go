// Package conntrack implements the userspace connection tracker OVS needed
// once the datapath left the kernel: Section 4 notes NSX depends on
// "connection tracking for firewalling in the kernel's netfilter subsystem"
// and that OVS "uses its own userspace implementations of these features".
//
// The tracker follows the OVS/netfilter model: connections are keyed by
// 5-tuple within a zone (zones keep different virtual networks' flows
// separate), carry a TCP state machine, support SNAT/DNAT with real header
// rewriting, and enforce per-zone connection limits — the feature whose
// kernel/out-of-tree double implementation Section 2.1.1 uses as a case
// study.
//
// The table is sharded (shard.go) the way the kernel's nf_conntrack hash
// is bucket-locked, records are free-listed and can expire on the engine
// timer wheel (expiry.go), per-zone limits degrade gracefully under
// pressure instead of hard-failing (degrade.go), and SNAT can draw ports
// from an allocator whose exhaustion path is deterministic (natpool.go).
package conntrack

import (
	"fmt"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// Tuple is a unidirectional 5-tuple.
type Tuple struct {
	SrcIP   hdr.IP4
	DstIP   hdr.IP4
	Proto   hdr.IPProto
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the reply-direction tuple.
func (t Tuple) Reverse() Tuple {
	return Tuple{SrcIP: t.DstIP, DstIP: t.SrcIP, Proto: t.Proto, SrcPort: t.DstPort, DstPort: t.SrcPort}
}

// String formats the tuple for diagnostics.
func (t Tuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", t.SrcIP, t.SrcPort, t.DstIP, t.DstPort, t.Proto)
}

// less orders tuples lexicographically; used only on cold paths that need
// a deterministic iteration order over map-held connections.
func (t Tuple) less(o Tuple) bool {
	if t.SrcIP != o.SrcIP {
		return t.SrcIP < o.SrcIP
	}
	if t.DstIP != o.DstIP {
		return t.DstIP < o.DstIP
	}
	if t.Proto != o.Proto {
		return t.Proto < o.Proto
	}
	if t.SrcPort != o.SrcPort {
		return t.SrcPort < o.SrcPort
	}
	return t.DstPort < o.DstPort
}

// State is the connection's protocol state.
type State int

// Connection states (a condensed netfilter TCP state machine plus the
// two-step UDP/ICMP model).
const (
	StateNew State = iota
	StateSynSent
	StateSynRecv
	StateEstablished
	StateFinWait
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateSynSent:
		return "syn-sent"
	case StateSynRecv:
		return "syn-recv"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateClosed:
		return "closed"
	default:
		return "?"
	}
}

// Default timeouts per state, in virtual time. They are compressed relative
// to real netfilter defaults so simulations can exercise expiry without
// hours of virtual time; the ordering (established >> transient) is
// preserved.
const (
	TimeoutSynSent     = 30 * sim.Second
	TimeoutEstablished = 600 * sim.Second
	TimeoutUDP         = 60 * sim.Second
	TimeoutFin         = 10 * sim.Second
)

// Timeouts holds the per-state-class expiry intervals. Scenarios compress
// them further (connscale uses millisecond-scale timeouts to cycle a
// million connections inside one measurement window).
type Timeouts struct {
	SynSent     sim.Time
	Established sim.Time
	UDP         sim.Time
	Fin         sim.Time
}

// DefaultTimeouts returns the package-constant intervals.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		SynSent:     TimeoutSynSent,
		Established: TimeoutEstablished,
		UDP:         TimeoutUDP,
		Fin:         TimeoutFin,
	}
}

// NAT describes a translation to apply at commit time.
type NAT struct {
	// SNAT: rewrite source address/port on the original direction
	// (destination on replies). DNAT is the converse.
	Kind NATKind
	Addr hdr.IP4
	Port uint16 // 0 keeps the original port

	// PortLo/PortHi select dynamic allocation from [PortLo, PortHi]
	// (the ct(nat(src=ip:lo-hi)) form): commit draws a free port from
	// the pool and the connection holds it until removal. Both zero
	// means no range; Port is then used verbatim.
	PortLo, PortHi uint16
}

// NATKind discriminates source vs destination translation.
type NATKind int

// NAT kinds.
const (
	NATNone NATKind = iota
	SNAT
	DNAT
)

// Conn is one tracked connection.
type Conn struct {
	Zone  uint16
	Orig  Tuple
	State State
	Mark  uint32
	NAT   NAT

	created sim.Time
	expires sim.Time
	// packets per direction.
	PktsOrig, PktsReply uint64

	// Intrusive per-zone recency list (degrade.go). prev/next double as
	// the free-list link when the record is recycled.
	prev, next *Conn
	zs         *zoneState
	class      connClass

	// Lazily created wheel timer (expiry.go); survives recycling so a
	// record's timer closure is allocated at most once.
	timer *sim.Timer

	// NAT port allocator bookkeeping (natpool.go).
	pool               *natPool
	poolPrev, poolNext *Conn
	poolPort           uint16
}

type connKey struct {
	zone  uint16
	tuple Tuple
}

// Table is the connection table.
type Table struct {
	eng    *sim.Engine
	shards []ctShard
	zones  map[uint16]*zoneState
	pools  map[natPoolKey]*natPool
	free   *Conn // recycled records, linked through next
	live   int
	wheel  bool

	// Loose enables mid-stream TCP pickup (nf_conntrack_tcp_loose,
	// enabled by default in Linux): a non-SYN packet with no known
	// connection creates one in the established state instead of being
	// marked invalid.
	Loose bool

	// Timeouts are the per-state expiry intervals (DefaultTimeouts
	// unless a scenario compresses them).
	Timeouts Timeouts

	// Stats. Every removal increments exactly one of Expired,
	// EarlyDrops, or Evicted, so at any instant
	// Created == Len() + Expired + EarlyDrops + Evicted.
	Created   uint64
	Expired   uint64
	LimitHits uint64 // commits refused at the hard limit (table-full drops)
	// Degradation-ladder counters (degrade.go).
	EarlyDrops uint64 // embryonic connections shed in the soft band
	Evicted    uint64 // LRU emergency evictions at the hard limit / NAT pool
	// NAT port allocator counters (natpool.go).
	NATExhausted     uint64 // commits refused with every port in the range held
	NATPortEvictions uint64 // of Evicted: evictions made to free a NAT port
	// RelatedICMP counts ICMP errors mapped back to an existing
	// connection (icmp.go).
	RelatedICMP uint64
}

// NewTable builds an empty table on the engine's clock.
func NewTable(eng *sim.Engine) *Table {
	t := &Table{
		eng:      eng,
		zones:    make(map[uint16]*zoneState),
		Loose:    true,
		Timeouts: DefaultTimeouts(),
	}
	t.initShards(DefaultShards)
	return t
}

// Len returns the number of live connections (expired entries may linger
// until touched, swept, or — with wheel expiry on — their timer fires).
func (t *Table) Len() int { return t.live }

// ZoneCount returns live connections in a zone.
func (t *Table) ZoneCount(zone uint16) int {
	if zs := t.zones[zone]; zs != nil {
		return zs.count
	}
	return 0
}

// TupleOf extracts the conntrack tuple from an IPv4 packet, reporting false
// for non-IPv4, fragmented-beyond-first, or ICMP-error packets (the latter
// are matched through their embedded tuple, not a tuple of their own).
func TupleOf(p *packet.Packet) (Tuple, bool) {
	tu, _, icmpErr, ok := extract(p)
	if icmpErr {
		return tu, false
	}
	return tu, ok
}

// extract pulls the 5-tuple and TCP flags out of an IPv4 frame in one
// parsing pass. icmpErr reports an ICMP error message (destination
// unreachable, time exceeded, ...) that carries an embedded tuple instead.
func extract(p *packet.Packet) (tu Tuple, tcpFlags uint8, icmpErr bool, ok bool) {
	d := p.Data
	eth, err := hdr.ParseEthernet(d)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return tu, 0, false, false
	}
	ip, err := hdr.ParseIPv4(d[eth.HeaderLen:])
	if err != nil || ip.FragOffset != 0 {
		return tu, 0, false, false
	}
	tu.SrcIP, tu.DstIP, tu.Proto = ip.Src, ip.Dst, ip.Proto
	l4 := d[eth.HeaderLen+ip.HeaderLen:]
	switch ip.Proto {
	case hdr.IPProtoTCP:
		h, err := hdr.ParseTCP(l4)
		if err != nil {
			return tu, 0, false, false
		}
		tu.SrcPort, tu.DstPort = h.SrcPort, h.DstPort
		tcpFlags = h.Flags
	case hdr.IPProtoUDP:
		h, err := hdr.ParseUDP(l4)
		if err != nil {
			return tu, 0, false, false
		}
		tu.SrcPort, tu.DstPort = h.SrcPort, h.DstPort
	case hdr.IPProtoICMP:
		h, err := hdr.ParseICMP(l4)
		if err != nil {
			return tu, 0, false, false
		}
		if icmpErrorType(h.Type) {
			return tu, 0, true, true
		}
		tu.SrcPort, tu.DstPort = h.ID, h.ID
	default:
		return tu, 0, false, false
	}
	return tu, tcpFlags, false, true
}

// Process runs the packet through the tracker in the given zone: the ct()
// datapath action. It sets the packet's conntrack metadata (CtState, CtZone,
// CtMark). With commit set, a new connection is installed (subject to the
// zone limit ladder); without it, new connections are only classified, as in
// OVS where commit happens on the firewall's allow rule.
func (t *Table) Process(p *packet.Packet, zone uint16, commit bool, nat NAT) {
	p.CtZone = zone
	tu, tcpFlags, icmpErr, ok := extract(p)
	if !ok {
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	if icmpErr {
		t.processICMPError(p, zone)
		return
	}
	now := t.eng.Now()

	c, found := t.lookup(zone, tu)
	if found && c.State == StateClosed && c.Orig.Proto == hdr.IPProtoTCP &&
		tcpFlags&hdr.TCPSyn != 0 && tcpFlags&(hdr.TCPAck|hdr.TCPRst|hdr.TCPFin) == 0 {
		// A fresh SYN over a closed (RST'd) connection reopens it, the
		// netfilter TIME_WAIT-reuse behavior: retire the stale record and
		// let the SYN start a new connection below.
		t.removeConn(c)
		t.Expired++
		found = false
	}
	if found {
		reply := c.Orig != tu
		t.advance(c, tcpFlags, reply, now)
		t.touch(c)
		p.CtState = packet.CtTracked
		p.CtMark = c.Mark
		switch c.State {
		case StateEstablished, StateFinWait:
			p.CtState |= packet.CtEstablished
		case StateSynSent, StateSynRecv, StateNew:
			if reply {
				p.CtState |= packet.CtEstablished
			} else {
				p.CtState |= packet.CtNew
			}
		case StateClosed:
			p.CtState |= packet.CtInvalid
		}
		if reply {
			p.CtState |= packet.CtReply
			c.PktsReply++
			t.applyNAT(p, c, true)
		} else {
			c.PktsOrig++
			t.applyNAT(p, c, false)
		}
		return
	}

	// New connection.
	p.CtState = packet.CtTracked | packet.CtNew
	midstream := tu.Proto == hdr.IPProtoTCP && tcpFlags&hdr.TCPSyn == 0
	if midstream && !t.Loose {
		// Mid-stream packet with no connection: invalid.
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	if midstream {
		// Loose pickup adopts the flow as already established.
		p.CtState = packet.CtTracked | packet.CtEstablished
	}
	if !commit {
		return
	}
	zs := t.zone(zone)
	if !t.admit(zs) {
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	c = t.allocConn()
	c.Zone, c.Orig, c.State, c.NAT, c.created = zone, tu, StateNew, nat, now
	if nat.Kind != NATNone && nat.PortLo != 0 {
		port, ok := t.allocNATPort(c, nat)
		if !ok {
			t.freeConn(c)
			p.CtState = packet.CtTracked | packet.CtInvalid
			return
		}
		c.NAT.Port = port
	}
	switch {
	case midstream:
		c.State = StateEstablished
		c.expires = now + t.Timeouts.Established
	case tu.Proto == hdr.IPProtoTCP:
		c.State = StateSynSent
		c.expires = now + t.Timeouts.SynSent
	default:
		c.expires = now + t.Timeouts.UDP
	}
	c.PktsOrig = 1
	c.zs = zs
	c.class = classOf(c.State)
	t.install(c)
	t.Created++
	t.applyNAT(p, c, false)
}

// lookup finds the connection for tuple in zone, in either direction,
// dropping it if expired.
func (t *Table) lookup(zone uint16, tu Tuple) (*Conn, bool) {
	c, ok := t.get(zone, tu)
	if !ok {
		return nil, false
	}
	if t.eng.Now() >= c.expires {
		t.removeConn(c)
		t.Expired++
		return nil, false
	}
	return c, true
}

// Find returns the connection for a tuple in a zone without touching
// state (diagnostics, tests).
func (t *Table) Find(zone uint16, tu Tuple) (*Conn, bool) { return t.lookup(zone, tu) }

// SetMark sets the connection mark (the ct_mark field rules match on).
func (t *Table) SetMark(zone uint16, tu Tuple, mark uint32) bool {
	c, ok := t.lookup(zone, tu)
	if !ok {
		return false
	}
	c.Mark = mark
	return true
}

// advance runs the TCP (or UDP/ICMP) state machine for one packet.
func (t *Table) advance(c *Conn, tcpFlags uint8, reply bool, now sim.Time) {
	if c.Orig.Proto != hdr.IPProtoTCP {
		// UDP/ICMP: a reply establishes.
		if reply && c.State != StateEstablished {
			c.State = StateEstablished
		}
		c.expires = now + t.Timeouts.UDP
		return
	}
	switch {
	case tcpFlags&hdr.TCPRst != 0:
		c.State = StateClosed
		c.expires = now + t.Timeouts.Fin
	case tcpFlags&hdr.TCPFin != 0:
		if c.State != StateClosed {
			c.State = StateFinWait
		}
		c.expires = now + t.Timeouts.Fin
	case c.State == StateSynSent && reply && tcpFlags&hdr.TCPSyn != 0 && tcpFlags&hdr.TCPAck != 0:
		c.State = StateSynRecv
		c.expires = now + t.Timeouts.SynSent
	case c.State == StateSynRecv && !reply && tcpFlags&hdr.TCPAck != 0:
		c.State = StateEstablished
		c.expires = now + t.Timeouts.Established
	case c.State == StateEstablished:
		// Includes a retransmitted SYN on an established connection:
		// it refreshes the timeout but must not reset the state.
		c.expires = now + t.Timeouts.Established
	case c.State == StateFinWait || c.State == StateClosed:
		// Closing states keep the short timeout: the stray ACKs of a
		// simultaneous close must not pin the record for the SYN
		// timeout.
		c.expires = now + t.Timeouts.Fin
	default:
		c.expires = now + t.Timeouts.SynSent
	}
}

// applyNAT rewrites packet headers per the connection's translation,
// recomputing checksums — the real work OVS had to reimplement in
// userspace.
func (t *Table) applyNAT(p *packet.Packet, c *Conn, reply bool) {
	if c.NAT.Kind == NATNone {
		return
	}
	eth, err := hdr.ParseEthernet(p.Data)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return
	}
	ipRaw := p.Data[eth.HeaderLen:]
	ip, err := hdr.ParseIPv4(ipRaw)
	if err != nil {
		return
	}
	l4 := ipRaw[ip.HeaderLen:]

	// Forward direction applies the translation; the reply direction
	// undoes it, restoring the original endpoint.
	var rewriteSrc bool
	var newAddr hdr.IP4
	var newPort uint16
	switch {
	case c.NAT.Kind == SNAT && !reply:
		rewriteSrc, newAddr, newPort = true, c.NAT.Addr, c.NAT.Port
	case c.NAT.Kind == SNAT && reply:
		rewriteSrc, newAddr, newPort = false, c.Orig.SrcIP, c.Orig.SrcPort
	case c.NAT.Kind == DNAT && !reply:
		rewriteSrc, newAddr, newPort = false, c.NAT.Addr, c.NAT.Port
	default: // DNAT reply
		rewriteSrc, newAddr, newPort = true, c.Orig.DstIP, c.Orig.DstPort
	}
	if rewriteSrc {
		ip.Src = newAddr
	} else {
		ip.Dst = newAddr
	}
	ip.SerializeTo(ipRaw)

	if newPort != 0 {
		switch ip.Proto {
		case hdr.IPProtoTCP, hdr.IPProtoUDP:
			if len(l4) >= 4 {
				portOff := 0
				if !rewriteSrc {
					portOff = 2
				}
				l4[portOff] = byte(newPort >> 8)
				l4[portOff+1] = byte(newPort)
			}
		}
	}
	switch ip.Proto {
	case hdr.IPProtoTCP:
		if len(l4) >= hdr.TCPMinSize {
			hdr.PutTCPChecksum(ip.Src, ip.Dst, l4)
		}
	case hdr.IPProtoUDP:
		if len(l4) >= hdr.UDPSize {
			hdr.PutUDPChecksum(ip.Src, ip.Dst, l4)
		}
	}
}

// install indexes the connection under both directions and threads it onto
// its zone's recency list. The reply direction accounts for NAT: replies
// arrive addressed to the translated tuple.
func (t *Table) install(c *Conn) {
	t.shardFor(c.Zone, c.Orig).conns[connKey{c.Zone, c.Orig}] = c
	rt := t.replyTuple(c)
	t.shardFor(c.Zone, rt).conns[connKey{c.Zone, rt}] = c
	c.zs.count++
	c.zs.lists[c.class].pushBack(c)
	t.live++
	if t.wheel {
		t.armTimer(c)
	}
}

// removeConn unlinks the connection from both shard indexes, its zone
// list, its NAT port pool, and its wheel timer, then recycles the record.
// The caller attributes the removal by bumping exactly one of the Expired,
// EarlyDrops, or Evicted counters.
func (t *Table) removeConn(c *Conn) {
	delete(t.shardFor(c.Zone, c.Orig).conns, connKey{c.Zone, c.Orig})
	rt := t.replyTuple(c)
	delete(t.shardFor(c.Zone, rt).conns, connKey{c.Zone, rt})
	c.zs.count--
	c.zs.lists[c.class].remove(c)
	t.live--
	if c.timer != nil {
		c.timer.Stop()
	}
	if c.pool != nil {
		c.pool.release(c)
	}
	t.freeConn(c)
}

// allocConn takes a record off the free list, or allocates one.
func (t *Table) allocConn() *Conn {
	if c := t.free; c != nil {
		t.free = c.next
		c.next = nil
		return c
	}
	return &Conn{}
}

// freeConn resets a record (keeping its timer, whose closure is bound to
// the record pointer) and pushes it on the free list.
func (t *Table) freeConn(c *Conn) {
	timer := c.timer
	*c = Conn{timer: timer}
	c.next = t.free
	t.free = c
}

// replyTuple computes the tuple reply packets carry, after translation.
func (t *Table) replyTuple(c *Conn) Tuple {
	r := c.Orig.Reverse()
	switch c.NAT.Kind {
	case SNAT:
		r.DstIP = c.NAT.Addr
		if c.NAT.Port != 0 {
			r.DstPort = c.NAT.Port
		}
	case DNAT:
		r.SrcIP = c.NAT.Addr
		if c.NAT.Port != 0 {
			r.SrcPort = c.NAT.Port
		}
	}
	return r
}

// Sweep removes expired connections and returns the count removed. With
// wheel expiry enabled it is a no-op in steady state (timers fire first)
// but remains correct.
func (t *Table) Sweep() int {
	now := t.eng.Now()
	var victims []*Conn
	seen := map[*Conn]bool{}
	for i := range t.shards {
		for _, c := range t.shards[i].conns {
			if now >= c.expires && !seen[c] {
				seen[c] = true
				victims = append(victims, c)
			}
		}
	}
	for _, c := range victims {
		t.removeConn(c)
		t.Expired++
	}
	return len(victims)
}

// Counters is a snapshot of the tracker's global counters for stats
// surfaces (dpif.Stats, dpctl-stats).
type Counters struct {
	Conns            int
	Created          uint64
	Expired          uint64
	EarlyDrops       uint64
	Evicted          uint64
	TableFull        uint64
	NATExhausted     uint64
	NATPortEvictions uint64
	RelatedICMP      uint64
}

// Counters snapshots the global counters.
func (t *Table) Counters() Counters {
	return Counters{
		Conns:            t.live,
		Created:          t.Created,
		Expired:          t.Expired,
		EarlyDrops:       t.EarlyDrops,
		Evicted:          t.Evicted,
		TableFull:        t.LimitHits,
		NATExhausted:     t.NATExhausted,
		NATPortEvictions: t.NATPortEvictions,
		RelatedICMP:      t.RelatedICMP,
	}
}

// PressureRemovals returns early-drops plus evictions — the removals the
// datapath charges eviction cost for.
func (t *Table) PressureRemovals() uint64 { return t.EarlyDrops + t.Evicted }
