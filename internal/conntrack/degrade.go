package conntrack

// Graceful degradation under connection-table pressure.
//
// The original tracker had one failure mode: at the per-zone limit every
// commit was refused, so a SYN flood that filled the table also locked out
// legitimate new connections until something expired. This file replaces
// that cliff with a ladder, modeled on what production OVS deployments
// layer on top of ct() (early-expiry of embryonic connections, zone
// limits, eviction policies):
//
//	count < soft          admit normally
//	soft <= count < hard  admit, but shed the oldest embryonic
//	                      (SYN_SENT-class) connection first — the
//	                      SYN-flood valve: attack state is recycled,
//	                      established connections never touched
//	count >= hard         emergency-evict the oldest closing-state
//	                      connection, else the oldest embryonic one, and
//	                      admit; only if every connection in the zone is
//	                      established is the commit refused (LimitHits)
//
// The legacy SetZoneLimit keeps its exact hard-reject semantics (it is
// what TestZoneLimit and the fig8 pipeline rely on); SetZoneLimits opts a
// zone into the ladder. A conntrack-pressure fault window (faultinject)
// clamps the effective limit via SetPressure, forcing the ladder on.

// connClass buckets states for the per-zone recency lists.
type connClass uint8

const (
	classEmbryonic   connClass = iota // New, SynSent, SynRecv
	classEstablished                  // Established
	classClosing                      // FinWait, Closed
	numClasses
)

func classOf(s State) connClass {
	switch s {
	case StateEstablished:
		return classEstablished
	case StateFinWait, StateClosed:
		return classClosing
	default:
		return classEmbryonic
	}
}

// connList is an intrusive doubly-linked list ordered by recency: head is
// the least recently touched connection (the eviction candidate).
type connList struct {
	head, tail *Conn
}

func (l *connList) pushBack(c *Conn) {
	c.prev = l.tail
	c.next = nil
	if l.tail != nil {
		l.tail.next = c
	} else {
		l.head = c
	}
	l.tail = c
}

func (l *connList) remove(c *Conn) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		l.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else {
		l.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

// zoneState tracks one zone's occupancy, limits, and recency lists.
type zoneState struct {
	count int
	// Legacy hard limit (SetZoneLimit) or ladder limits (SetZoneLimits).
	soft, hard int
	ladder     bool
	// pressure is a fault-window clamp on the effective hard limit
	// (0 = none); it forces the ladder on so clamped zones degrade
	// instead of hard-failing.
	pressure int
	lists    [numClasses]connList
}

// effective resolves the zone's working limits under any pressure clamp.
func (zs *zoneState) effective() (soft, hard int, ladder bool) {
	soft, hard, ladder = zs.soft, zs.hard, zs.ladder
	if zs.pressure > 0 && (hard <= 0 || zs.pressure < hard) {
		hard = zs.pressure
		ladder = true
	}
	if hard > 0 && (soft <= 0 || soft > hard) {
		soft = hard
	}
	return soft, hard, ladder
}

func (t *Table) zone(z uint16) *zoneState {
	zs := t.zones[z]
	if zs == nil {
		zs = &zoneState{}
		t.zones[z] = zs
	}
	return zs
}

// SetZoneLimit caps concurrent connections in zone (0 removes the cap)
// with the legacy hard-reject behavior: at the limit every commit is
// refused and counted in LimitHits — the per-zone connection limiting
// feature of Section 2.1.1.
func (t *Table) SetZoneLimit(zone uint16, limit int) {
	zs := t.zone(zone)
	if limit <= 0 {
		zs.soft, zs.hard, zs.ladder = 0, 0, false
		return
	}
	zs.soft, zs.hard, zs.ladder = limit, limit, false
}

// SetZoneLimits opts the zone into the graceful-degradation ladder with a
// soft and hard limit (soft <= hard; 0,0 removes both). Between soft and
// hard, commits shed the oldest embryonic connection; at hard, the oldest
// closing or embryonic connection is emergency-evicted to make room, and
// only an all-established zone refuses the commit.
func (t *Table) SetZoneLimits(zone uint16, soft, hard int) {
	zs := t.zone(zone)
	if hard <= 0 {
		zs.soft, zs.hard, zs.ladder = 0, 0, false
		return
	}
	if soft <= 0 || soft > hard {
		soft = hard
	}
	zs.soft, zs.hard, zs.ladder = soft, hard, true
}

// SetPressure clamps the zone's effective hard limit to n (0 lifts the
// clamp). Driven by faultinject's conntrack-pressure windows.
func (t *Table) SetPressure(zone uint16, n int) {
	t.zone(zone).pressure = n
}

// touch moves the connection to the back of its (possibly new) class list
// after the state machine ran, keeping each list LRU-ordered.
func (t *Table) touch(c *Conn) {
	cl := classOf(c.State)
	c.zs.lists[c.class].remove(c)
	c.class = cl
	c.zs.lists[cl].pushBack(c)
}

// admit decides whether a commit may proceed, running the degradation
// ladder. It may remove a victim connection to make room; it reports false
// only when the zone is at its hard limit with no evictable victim (or the
// zone uses the legacy hard-reject limit).
func (t *Table) admit(zs *zoneState) bool {
	soft, hard, ladder := zs.effective()
	if hard <= 0 {
		return true
	}
	if zs.count >= hard {
		if ladder {
			if v := zs.lists[classClosing].head; v != nil {
				t.removeConn(v)
				t.Evicted++
				return true
			}
			if v := zs.lists[classEmbryonic].head; v != nil {
				t.removeConn(v)
				t.Evicted++
				return true
			}
		}
		t.LimitHits++
		return false
	}
	if ladder && zs.count >= soft {
		// Soft band: admit, but shed the oldest embryonic connection
		// so SYN-flood state recycles instead of accumulating.
		if v := zs.lists[classEmbryonic].head; v != nil {
			t.removeConn(v)
			t.EarlyDrops++
		}
	}
	return true
}
