package conntrack

import (
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

// ICMP error handling. An ICMP error (destination unreachable, time
// exceeded, ...) quotes the IP header + first 8 L4 bytes of the packet
// that triggered it. The tracker must look that embedded tuple up and
// relate the error to the originating connection — including un-NATing
// the outer header so the error reaches the private endpoint. The old
// tracker instead treated the error as a fresh ICMP flow keyed by its
// (zero) identifier: errors never matched their connection, and with
// commit set they polluted the table with bogus entries.

// ICMP error types (RFC 792). hdr only names echo request/reply, so the
// error types live here.
const (
	icmpDestUnreachable = 3
	icmpSourceQuench    = 4
	icmpRedirect        = 5
	icmpTimeExceeded    = 11
	icmpParamProblem    = 12
)

func icmpErrorType(typ uint8) bool {
	switch typ {
	case icmpDestUnreachable, icmpSourceQuench, icmpRedirect, icmpTimeExceeded, icmpParamProblem:
		return true
	}
	return false
}

// processICMPError relates an ICMP error to the connection that triggered
// it via the embedded tuple. Matched errors are marked related (never
// new), counted on the connection, and de-NATed; unmatched ones are
// invalid. No table entry is ever created for an error, commit or not.
func (t *Table) processICMPError(p *packet.Packet, zone uint16) {
	emb, ok := embeddedTuple(p)
	if !ok {
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	c, embOrig, found := t.findRelated(zone, emb)
	if !found {
		p.CtState = packet.CtTracked | packet.CtInvalid
		return
	}
	p.CtState = packet.CtTracked | packet.CtRelated
	p.CtMark = c.Mark
	t.RelatedICMP++
	if embOrig {
		// The embedded packet traveled the original direction, so the
		// error travels the reply direction — back toward the
		// originator, through any translation.
		p.CtState |= packet.CtReply
		c.PktsReply++
		t.applyNATAddr(p, c, true)
	} else {
		c.PktsOrig++
		t.applyNATAddr(p, c, false)
	}
}

// findRelated resolves an embedded tuple to its connection. The embedded
// tuple is as seen on the wire, so for a NATed connection it may be the
// post-translation form; both the direct and reversed forms are probed
// against the table's two per-connection keys. embOrig reports whether the
// embedded packet traveled the connection's original direction.
func (t *Table) findRelated(zone uint16, emb Tuple) (c *Conn, embOrig, found bool) {
	if c, ok := t.get(zone, emb); ok {
		return c, emb == c.Orig, true
	}
	rev := emb.Reverse()
	if c, ok := t.get(zone, rev); ok {
		// rev matched a table key: if it is the reply key, the embedded
		// tuple was the (translated) original direction.
		return c, rev != c.Orig, true
	}
	return nil, false, false
}

// embeddedTuple parses the tuple of the packet quoted inside an ICMP
// error: the inner IP header plus the first 4 L4 bytes (ports) — all RFC
// 792 guarantees is 8 L4 bytes.
func embeddedTuple(p *packet.Packet) (Tuple, bool) {
	var tu Tuple
	d := p.Data
	eth, err := hdr.ParseEthernet(d)
	if err != nil {
		return tu, false
	}
	ip, err := hdr.ParseIPv4(d[eth.HeaderLen:])
	if err != nil {
		return tu, false
	}
	l4 := d[eth.HeaderLen+ip.HeaderLen:]
	if len(l4) < hdr.ICMPSize {
		return tu, false
	}
	inner := l4[hdr.ICMPSize:]
	iip, err := hdr.ParseIPv4(inner)
	if err != nil {
		return tu, false
	}
	tu.SrcIP, tu.DstIP, tu.Proto = iip.Src, iip.Dst, iip.Proto
	il4 := inner[iip.HeaderLen:]
	switch iip.Proto {
	case hdr.IPProtoTCP, hdr.IPProtoUDP:
		if len(il4) < 4 {
			return tu, false
		}
		tu.SrcPort = uint16(il4[0])<<8 | uint16(il4[1])
		tu.DstPort = uint16(il4[2])<<8 | uint16(il4[3])
	case hdr.IPProtoICMP:
		h, err := hdr.ParseICMP(il4)
		if err != nil {
			return tu, false
		}
		tu.SrcPort, tu.DstPort = h.ID, h.ID
	default:
		return tu, false
	}
	return tu, true
}

// applyNATAddr rewrites only the outer IP addresses of an ICMP error per
// the connection's translation — the L4 inside is the quoted original
// packet, and the outer ICMP has no ports.
func (t *Table) applyNATAddr(p *packet.Packet, c *Conn, reply bool) {
	if c.NAT.Kind == NATNone {
		return
	}
	eth, err := hdr.ParseEthernet(p.Data)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return
	}
	ipRaw := p.Data[eth.HeaderLen:]
	ip, err := hdr.ParseIPv4(ipRaw)
	if err != nil {
		return
	}
	switch {
	case c.NAT.Kind == SNAT && !reply:
		ip.Src = c.NAT.Addr
	case c.NAT.Kind == SNAT && reply:
		ip.Dst = c.Orig.SrcIP
	case c.NAT.Kind == DNAT && !reply:
		ip.Dst = c.NAT.Addr
	default: // DNAT reply
		ip.Src = c.Orig.DstIP
	}
	ip.SerializeTo(ipRaw)
}
