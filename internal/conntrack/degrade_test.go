package conntrack

import (
	"testing"

	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// TestLadderEarlyDropInSoftBand: between soft and hard the ladder admits
// new commits but sheds the oldest embryonic connection, so embryonic
// state recycles instead of accumulating toward the hard limit.
func TestLadderEarlyDropInSoftBand(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	ct.SetZoneLimits(1, 3, 10)

	tuples := fillConns(ct, 1, 3) // at soft, all embryonic
	p := tcpPkt(hdr.MakeIP4(10, 9, 9, 9), ipB, 5000, 80, hdr.TCPSyn)
	ct.Process(p, 1, true, NAT{})
	if p.CtState&packet.CtNew == 0 {
		t.Fatalf("soft-band commit classified %s, want new (admitted)", p.CtState)
	}
	if ct.EarlyDrops != 1 || ct.ZoneCount(1) != 3 {
		t.Fatalf("early-drops=%d zone=%d, want 1/3", ct.EarlyDrops, ct.ZoneCount(1))
	}
	if _, ok := ct.Find(1, tuples[0]); ok {
		t.Fatal("oldest embryonic connection must be the one shed")
	}
	if _, ok := ct.Find(1, tuples[1]); !ok {
		t.Fatal("younger embryonic connection wrongly shed")
	}
}

// TestLadderEvictionOrderAtHard: at the hard limit the ladder evicts the
// oldest closing connection first, then the oldest embryonic — never an
// established one.
func TestLadderEvictionOrderAtHard(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	ct.SetZoneLimits(1, 3, 3)

	handshake(ct, 1, 1000, 80) // A: established
	handshake(ct, 1, 1001, 80) // B: will be closing
	ct.Process(tcpPkt(ipA, ipB, 1001, 80, hdr.TCPFin|hdr.TCPAck), 1, false, NAT{})
	ct.Process(tcpPkt(ipA, ipB, 1002, 80, hdr.TCPSyn), 1, true, NAT{}) // C: embryonic

	// D commits at the hard limit: the closing B goes first.
	ct.Process(tcpPkt(ipA, ipB, 1003, 80, hdr.TCPSyn), 1, true, NAT{})
	if ct.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", ct.Evicted)
	}
	tuB, _ := TupleOf(tcpPkt(ipA, ipB, 1001, 80, hdr.TCPAck))
	if _, ok := ct.Find(1, tuB); ok {
		t.Fatal("closing connection must be evicted first")
	}

	// E commits: no closing left, so the oldest embryonic (C) goes.
	ct.Process(tcpPkt(ipA, ipB, 1004, 80, hdr.TCPSyn), 1, true, NAT{})
	if ct.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", ct.Evicted)
	}
	tuC, _ := TupleOf(tcpPkt(ipA, ipB, 1002, 80, hdr.TCPAck))
	if _, ok := ct.Find(1, tuC); ok {
		t.Fatal("oldest embryonic connection must be evicted next")
	}
	if got := connState(t, ct, 1, 1000, 80); got != StateEstablished {
		t.Fatalf("established connection disturbed: state %v", got)
	}
}

// TestLadderRejectsAllEstablished: with every slot held by an established
// connection there is no acceptable victim — the commit is refused and
// counted as a table-full drop, exactly like the legacy limit.
func TestLadderRejectsAllEstablished(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	ct.SetZoneLimits(1, 2, 2)
	handshake(ct, 1, 1000, 80)
	handshake(ct, 1, 1001, 80)

	p := tcpPkt(ipA, ipB, 1002, 80, hdr.TCPSyn)
	ct.Process(p, 1, true, NAT{})
	if p.CtState&packet.CtInvalid == 0 {
		t.Fatalf("refused commit classified %s, want invalid", p.CtState)
	}
	if ct.LimitHits != 1 || ct.Evicted != 0 || ct.ZoneCount(1) != 2 {
		t.Fatalf("limit-hits=%d evicted=%d zone=%d, want 1/0/2",
			ct.LimitHits, ct.Evicted, ct.ZoneCount(1))
	}
}

// TestConservationLedger: across admits, sheds, evictions, and expiries,
// every created connection is accounted for by exactly one removal
// counter.
func TestConservationLedger(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	ct.Timeouts.SynSent = 10 * sim.Millisecond
	ct.SetZoneLimits(1, 50, 60)
	fillConns(ct, 1, 200) // far past both limits: sheds and evictions
	eng.RunUntil(sim.Second)
	ct.Sweep() // everything left is long expired

	c := ct.Counters()
	if c.Created != c.Expired+c.EarlyDrops+c.Evicted+uint64(ct.Len()) {
		t.Fatalf("ledger broken: created %d != expired %d + early %d + evicted %d + live %d",
			c.Created, c.Expired, c.EarlyDrops, c.Evicted, ct.Len())
	}
	if c.EarlyDrops == 0 {
		t.Fatal("expected soft-band early drops")
	}
}

// TestConntrackPressureFault wires a faultinject conntrack-pressure window
// to the zone clamp: inside the window commits run the forced ladder
// against the clamped limit; after it closes the zone returns to
// unlimited.
func TestConntrackPressureFault(t *testing.T) {
	eng := sim.NewEngine(1)
	ct := NewTable(eng)
	inj := faultinject.New(eng)

	fillConns(ct, 5, 4)
	inj.Window(faultinject.KindConntrackPressure, "zone5",
		10*sim.Millisecond, 20*sim.Millisecond, func(active bool) {
			if active {
				ct.SetPressure(5, 2)
			} else {
				ct.SetPressure(5, 0)
			}
		})

	// Inside the window: the clamp forces the ladder, which must evict an
	// embryonic victim to admit the commit.
	eng.ScheduleAt(15*sim.Millisecond, func() {
		p := tcpPkt(ipA, ipB, 7000, 80, hdr.TCPSyn)
		ct.Process(p, 5, true, NAT{})
		if p.CtState&packet.CtNew == 0 {
			t.Errorf("clamped commit classified %s, want new via eviction", p.CtState)
		}
		if ct.Evicted != 1 {
			t.Errorf("evicted = %d inside pressure window, want 1", ct.Evicted)
		}
	})
	// After the window: unlimited again, no further pressure removals.
	eng.ScheduleAt(40*sim.Millisecond, func() {
		before := ct.PressureRemovals()
		p := tcpPkt(ipA, ipB, 7001, 80, hdr.TCPSyn)
		ct.Process(p, 5, true, NAT{})
		if p.CtState&packet.CtNew == 0 || ct.PressureRemovals() != before {
			t.Errorf("commit after window: state %s, removals %d->%d",
				p.CtState, before, ct.PressureRemovals())
		}
	})
	eng.RunUntil(50 * sim.Millisecond)
	if inj.Windows(faultinject.KindConntrackPressure) != 1 {
		t.Fatalf("windows = %d, want 1", inj.Windows(faultinject.KindConntrackPressure))
	}
}
