package conntrack

import "sort"

// Timer-wheel expiry. The original tracker only reclaimed expired
// connections lazily (on lookup) or via Sweep's full linear scan — O(table)
// per sweep, the same cost profile the sweep revalidator had before the
// wheel revalidator (PR 7). With wheel expiry enabled, every connection
// carries a rearmable sim.Timer on the engine's slab-backed wheel:
//
//   - install arms the timer at the connection's deadline;
//   - the hot path only writes c.expires (no wheel traffic per packet);
//   - when the timer fires, a refreshed deadline just re-arms it (lazy
//     re-arm, the mintmr discipline), an elapsed one removes the record.
//
// Expiry work then scales with expirations, not table size, and a
// million-connection table costs one pending timer record per connection —
// no scans.
//
// Wheel expiry is opt-in (scenarios enable it) because arming timers
// consumes engine sequence numbers: enabling it by default would shift
// event ordering in every existing experiment and break byte-identity of
// their output. The default path — lookup-time expiry plus Sweep — is
// unchanged.

// EnableWheelExpiry turns timer-wheel expiry on or off. Enabling arms a
// timer for every live connection in deterministic (sorted-key) order so
// engine sequence allocation does not depend on map iteration; disabling
// stops all timers.
func (t *Table) EnableWheelExpiry(on bool) {
	if on == t.wheel {
		return
	}
	t.wheel = on
	if !on {
		for i := range t.shards {
			for _, c := range t.shards[i].conns {
				if c.timer != nil {
					c.timer.Stop()
				}
			}
		}
		return
	}
	var conns []*Conn
	seen := map[*Conn]bool{}
	for i := range t.shards {
		for _, c := range t.shards[i].conns {
			if !seen[c] {
				seen[c] = true
				conns = append(conns, c)
			}
		}
	}
	sort.Slice(conns, func(i, j int) bool {
		if conns[i].Zone != conns[j].Zone {
			return conns[i].Zone < conns[j].Zone
		}
		return conns[i].Orig.less(conns[j].Orig)
	})
	for _, c := range conns {
		t.armTimer(c)
	}
}

// armTimer schedules the connection's expiry timer at its deadline,
// creating the timer (and its closure) at most once per record — recycled
// records keep their timer, so steady-state churn allocates nothing.
func (t *Table) armTimer(c *Conn) {
	if c.timer == nil {
		cc := c
		c.timer = t.eng.NewTimer(func() { t.timerFired(cc) })
	}
	c.timer.ScheduleAt(c.expires)
}

// timerFired handles a wheel expiry. The record is necessarily live:
// removal stops the timer and recycling keeps it stopped, so a fired timer
// always refers to the connection it was armed for.
func (t *Table) timerFired(c *Conn) {
	if t.eng.Now() < c.expires {
		// The deadline moved while the timer was pending (the hot path
		// refreshed c.expires): re-arm at the new deadline.
		c.timer.ScheduleAt(c.expires)
		return
	}
	t.removeConn(c)
	t.Expired++
}
