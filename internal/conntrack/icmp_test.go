package conntrack

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

var ipRouter = hdr.MakeIP4(10, 0, 0, 254)

// quotedPacket builds the ICMP-error payload: the quoted IP header plus
// the first 8 L4 bytes of the packet that triggered the error.
func quotedPacket(src, dst hdr.IP4, sport, dport uint16) []byte {
	frame := hdr.NewBuilder().Eth(macA, macB).IPv4H(src, dst, 64).
		TCPH(sport, dport, 1, 0, hdr.TCPAck).Build()
	ip, _ := hdr.ParseIPv4(frame[hdr.EthernetSize:])
	return frame[hdr.EthernetSize : hdr.EthernetSize+ip.HeaderLen+8]
}

// icmpError builds a destination-unreachable carrying the quoted packet.
func icmpError(src, dst hdr.IP4, quoted []byte) *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macB, macA).IPv4H(src, dst, 64).
		ICMPH(icmpDestUnreachable, 1, 0, 0).Payload(quoted).Build())
}

// TestICMPErrorRelatesToConnection: an ICMP error quoting an existing
// connection's packet maps back to that connection — related, reply
// direction, counted — and never creates a table entry, commit or not.
// The old tracker keyed the error as a fresh ICMP flow by its (zero)
// identifier, so errors never matched and polluted the table.
func TestICMPErrorRelatesToConnection(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	handshake(ct, 1, 1000, 80)
	c := findConn(t, ct, 1, 1000, 80)
	replyBefore := c.PktsReply

	p := icmpError(ipRouter, ipA, quotedPacket(ipA, ipB, 1000, 80))
	ct.Process(p, 1, true, NAT{})
	want := packet.CtTracked | packet.CtRelated | packet.CtReply
	if p.CtState&want != want || p.CtState&(packet.CtNew|packet.CtInvalid) != 0 {
		t.Fatalf("error classified %s, want related+reply", p.CtState)
	}
	if ct.RelatedICMP != 1 || ct.Len() != 1 || ct.Created != 1 {
		t.Fatalf("related=%d len=%d created=%d, want 1/1/1 (no entry for the error)",
			ct.RelatedICMP, ct.Len(), ct.Created)
	}
	if c.PktsReply != replyBefore+1 {
		t.Fatalf("error not counted on the connection: %d -> %d", replyBefore, c.PktsReply)
	}
}

// TestICMPErrorUnNATed: for a source-NATed connection the error quotes the
// translated packet and arrives addressed to the translation; relating it
// must rewrite the outer destination back to the private endpoint so the
// error actually reaches the sender.
func TestICMPErrorUnNATed(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	ct.Process(tcpPkt(ipA, ipB, 1000, 80, hdr.TCPSyn), 1, true, snatRange(40000, 40003))

	p := icmpError(ipB, natIP, quotedPacket(natIP, ipB, 40000, 80))
	ct.Process(p, 1, false, NAT{})
	if p.CtState&packet.CtRelated == 0 || p.CtState&packet.CtReply == 0 {
		t.Fatalf("NATed error classified %s, want related+reply", p.CtState)
	}
	ip, _ := hdr.ParseIPv4(p.Data[hdr.EthernetSize:])
	if ip.Dst != ipA {
		t.Fatalf("outer destination = %v, want un-NATed %v", ip.Dst, ipA)
	}
}

// TestICMPErrorUnmatchedInvalid: an error quoting an unknown tuple is
// invalid and leaves no state behind even when committed.
func TestICMPErrorUnmatchedInvalid(t *testing.T) {
	ct := NewTable(sim.NewEngine(1))
	p := icmpError(ipRouter, ipA, quotedPacket(ipA, ipB, 4444, 9999))
	ct.Process(p, 1, true, NAT{})
	if p.CtState&packet.CtInvalid == 0 {
		t.Fatalf("unmatched error classified %s, want invalid", p.CtState)
	}
	if ct.Len() != 0 || ct.Created != 0 {
		t.Fatalf("len=%d created=%d, want no entries", ct.Len(), ct.Created)
	}
}

// TestICMPErrorHasNoTupleOfItsOwn: the error is matched through its
// embedded tuple, so TupleOf must refuse to give it one.
func TestICMPErrorHasNoTupleOfItsOwn(t *testing.T) {
	p := icmpError(ipRouter, ipA, quotedPacket(ipA, ipB, 1000, 80))
	if _, ok := TupleOf(p); ok {
		t.Fatal("ICMP error must not extract as a standalone tuple")
	}
}
