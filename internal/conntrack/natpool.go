package conntrack

// NAT port allocation. A NAT with a PortLo..PortHi range draws each
// committed connection's translated port from a shared pool (one pool per
// {kind, address, range}), the ct(nat(src=ip:lo-hi)) form. The interesting
// design point is exhaustion: real deployments hit it constantly (one
// public IP is 64k ports), and the failure mode must be deterministic —
// never silent port reuse (which would cross-wire two connections'
// replies), never a panic. The ladder here mirrors the table's: evict the
// oldest non-established port holder to recycle its port (counted in both
// Evicted and NATPortEvictions); if every holder is established, refuse
// the commit (NATExhausted) — established connections keep their ports.

type natPoolKey struct {
	kind   NATKind
	addr   uint32 // hdr.IP4 widened for the key
	lo, hi uint16
}

// natPool tracks one {kind, address, port-range}'s allocations.
type natPool struct {
	lo, hi uint16
	inUse  map[uint16]*Conn
	// rotor is the next-fit scan start: ports are handed out in
	// ascending wrap-around order, so allocation order is deterministic
	// and freed ports are not immediately reused (minimizing accidental
	// reply cross-wiring while a stale peer still holds table state).
	rotor uint16
	// Allocation-order list, oldest first, linked through poolPrev/Next:
	// the eviction scan order.
	head, tail *Conn
}

// allocNATPort reserves a port for c from nat's pool, evicting the oldest
// non-established holder if the range is exhausted. It reports false (and
// counts NATExhausted) when every port is held by an established
// connection. c is not yet installed; on success its pool fields are set
// and release happens in removeConn.
func (t *Table) allocNATPort(c *Conn, nat NAT) (uint16, bool) {
	key := natPoolKey{kind: nat.Kind, addr: uint32(nat.Addr), lo: nat.PortLo, hi: nat.PortHi}
	pool := t.pools[key]
	if pool == nil {
		if t.pools == nil {
			t.pools = make(map[natPoolKey]*natPool)
		}
		pool = &natPool{lo: nat.PortLo, hi: nat.PortHi, inUse: make(map[uint16]*Conn), rotor: nat.PortLo}
		t.pools[key] = pool
	}
	port, ok := pool.alloc()
	if !ok {
		if v := pool.oldestEvictable(); v != nil {
			t.removeConn(v)
			t.Evicted++
			t.NATPortEvictions++
			port, ok = pool.alloc()
		}
	}
	if !ok {
		t.NATExhausted++
		return 0, false
	}
	c.pool = pool
	c.poolPort = port
	pool.inUse[port] = c
	pool.pushBack(c)
	return port, true
}

// alloc scans next-fit from the rotor for a free port.
func (p *natPool) alloc() (uint16, bool) {
	span := int(p.hi) - int(p.lo) + 1
	cand := p.rotor
	for i := 0; i < span; i++ {
		if _, used := p.inUse[cand]; !used {
			if cand == p.hi {
				p.rotor = p.lo
			} else {
				p.rotor = cand + 1
			}
			return cand, true
		}
		if cand == p.hi {
			cand = p.lo
		} else {
			cand++
		}
	}
	return 0, false
}

// oldestEvictable returns the oldest holder that is not established.
func (p *natPool) oldestEvictable() *Conn {
	for c := p.head; c != nil; c = c.poolNext {
		if c.State != StateEstablished {
			return c
		}
	}
	return nil
}

func (p *natPool) pushBack(c *Conn) {
	c.poolPrev = p.tail
	c.poolNext = nil
	if p.tail != nil {
		p.tail.poolNext = c
	} else {
		p.head = c
	}
	p.tail = c
}

// release frees the connection's port and unlinks it from the pool.
func (p *natPool) release(c *Conn) {
	delete(p.inUse, c.poolPort)
	if c.poolPrev != nil {
		c.poolPrev.poolNext = c.poolNext
	} else {
		p.head = c.poolNext
	}
	if c.poolNext != nil {
		c.poolNext.poolPrev = c.poolPrev
	} else {
		p.tail = c.poolPrev
	}
	c.pool, c.poolPrev, c.poolNext = nil, nil, nil
}
