package tunnel

import (
	"bytes"
	"testing"

	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

var (
	macA  = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB  = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
	vtepA = hdr.MakeIP4(172, 16, 0, 1)
	vtepB = hdr.MakeIP4(172, 16, 0, 2)
	gwMAC = hdr.MAC{0xde, 0xad, 0, 0, 0, 1}
	upMAC = hdr.MAC{0x02, 0xff, 0, 0, 0, 1}
)

func testCache(t *testing.T) *netlinksim.Cache {
	t.Helper()
	k := netlinksim.NewKernel()
	idx, err := k.AddLink("uplink", "mlx5_core", upMAC, 1600)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddAddr("uplink", vtepA, 16); err != nil {
		t.Fatal(err)
	}
	if err := k.AddNeigh(netlinksim.Neigh{IP: vtepB, MAC: gwMAC, LinkIndex: idx}); err != nil {
		t.Fatal(err)
	}
	return netlinksim.NewCache(k)
}

func innerFrame() []byte {
	return hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PayloadLen(26).Build()
}

func TestGeneveEncapDecapRoundTrip(t *testing.T) {
	e := NewEncapper(testCache(t))
	inner := packet.New(innerFrame())
	cfg := Config{Kind: Geneve, LocalIP: vtepA, RemoteIP: vtepB, VNI: 5001,
		Options: []hdr.GeneveOption{{Class: 0x0104, Type: 1, Data: []byte{0, 0, 0, 9}}}}

	outer, err := e.Encap(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Outer header facts.
	eth, _ := hdr.ParseEthernet(outer.Data)
	if eth.Src != upMAC || eth.Dst != gwMAC {
		t.Fatalf("outer MACs = %s -> %s", eth.Src, eth.Dst)
	}
	ip, _ := hdr.ParseIPv4(outer.Data[eth.HeaderLen:])
	if ip.Src != vtepA || ip.Dst != vtepB {
		t.Fatalf("outer IPs = %s -> %s", ip.Src, ip.Dst)
	}

	got, wasTunnel, err := Decap(outer)
	if err != nil || !wasTunnel {
		t.Fatalf("decap: %v %v", wasTunnel, err)
	}
	if !bytes.Equal(got.Data, inner.Data) {
		t.Fatal("inner frame corrupted")
	}
	if got.Tunnel == nil || got.Tunnel.VNI != 5001 ||
		got.Tunnel.SrcIP != vtepA || got.Tunnel.DstIP != vtepB {
		t.Fatalf("tunnel info = %+v", got.Tunnel)
	}
	if !bytes.Equal(got.Tunnel.OptData, []byte{0, 0, 0, 9}) {
		t.Fatalf("geneve option lost: %v", got.Tunnel.OptData)
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	e := NewEncapper(testCache(t))
	inner := packet.New(innerFrame())
	outer, err := e.Encap(inner, Config{Kind: VXLAN, LocalIP: vtepA, RemoteIP: vtepB, VNI: 42})
	if err != nil {
		t.Fatal(err)
	}
	got, wasTunnel, err := Decap(outer)
	if err != nil || !wasTunnel || got.Tunnel.VNI != 42 {
		t.Fatalf("vxlan decap: %v %v %+v", wasTunnel, err, got)
	}
	if !bytes.Equal(got.Data, inner.Data) {
		t.Fatal("inner frame corrupted")
	}
}

func TestGRERoundTrip(t *testing.T) {
	e := NewEncapper(testCache(t))
	inner := packet.New(innerFrame())
	outer, err := e.Encap(inner, Config{Kind: GRE, LocalIP: vtepA, RemoteIP: vtepB, VNI: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, wasTunnel, err := Decap(outer)
	if err != nil || !wasTunnel || got.Tunnel.VNI != 7 {
		t.Fatalf("gre decap: %v %v", wasTunnel, err)
	}
	if !bytes.Equal(got.Data, inner.Data) {
		t.Fatal("inner frame corrupted")
	}
}

func TestEncapNoRoute(t *testing.T) {
	e := NewEncapper(testCache(t))
	_, err := e.Encap(packet.New(innerFrame()),
		Config{Kind: Geneve, LocalIP: vtepA, RemoteIP: hdr.MakeIP4(203, 0, 113, 9), VNI: 1})
	if _, ok := err.(ErrNoRoute); !ok {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
}

func TestSourcePortEntropy(t *testing.T) {
	// Different inner flows must get different outer source ports so the
	// underlay's RSS can spread them.
	e := NewEncapper(testCache(t))
	cfg := Config{Kind: Geneve, LocalIP: vtepA, RemoteIP: vtepB, VNI: 1}
	ports := map[uint16]bool{}
	for i := 0; i < 32; i++ {
		f := hdr.NewBuilder().Eth(macA, macB).
			IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
			UDPH(uint16(1000+i), 2000).PayloadLen(4).Build()
		outer, err := e.Encap(packet.New(f), cfg)
		if err != nil {
			t.Fatal(err)
		}
		eth, _ := hdr.ParseEthernet(outer.Data)
		ip, _ := hdr.ParseIPv4(outer.Data[eth.HeaderLen:])
		udp, _ := hdr.ParseUDP(outer.Data[eth.HeaderLen+ip.HeaderLen:])
		ports[udp.SrcPort] = true
		if udp.SrcPort < 0xC000 {
			t.Fatalf("source port %d below the ephemeral base", udp.SrcPort)
		}
	}
	if len(ports) < 16 {
		t.Fatalf("only %d distinct source ports over 32 flows", len(ports))
	}
	// Same flow: stable port.
	a, _ := e.Encap(packet.New(innerFrame()), cfg)
	b, _ := e.Encap(packet.New(innerFrame()), cfg)
	if !bytes.Equal(a.Data[34:36], b.Data[34:36]) {
		t.Fatal("same inner flow must map to the same outer source port")
	}
}

func TestDecapNonTunnelPassthrough(t *testing.T) {
	plain := packet.New(innerFrame())
	if _, wasTunnel, err := Decap(plain); wasTunnel || err != nil {
		t.Fatal("plain traffic must not decap")
	}
	arp := packet.New(hdr.NewBuilder().Eth(macA, hdr.Broadcast).
		ARPH(hdr.ARPRequest, macA, vtepA, hdr.MAC{}, vtepB).Build())
	if _, wasTunnel, _ := Decap(arp); wasTunnel {
		t.Fatal("ARP must not decap")
	}
}

func TestDecapMalformedGeneve(t *testing.T) {
	e := NewEncapper(testCache(t))
	outer, err := e.Encap(packet.New(innerFrame()),
		Config{Kind: Geneve, LocalIP: vtepA, RemoteIP: vtepB, VNI: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the Geneve header's option length so it overruns.
	genOff := 14 + 20 + 8
	outer.Data[genOff] = 0x3f
	_, wasTunnel, err := Decap(outer)
	if !wasTunnel || err == nil {
		t.Fatal("malformed geneve must be recognized as tunnel and rejected")
	}
	// This is the Section 6 troubleshooting story: a malformed tunnel
	// header yields an error (userspace would core-dump and restart at
	// worst), never a crash of the whole simulation/host.
}

func TestERSPANRoundTrip(t *testing.T) {
	e := NewEncapper(testCache(t))
	inner := packet.New(innerFrame())
	outer, err := e.Encap(inner, Config{Kind: ERSPAN, LocalIP: vtepA, RemoteIP: vtepB, VNI: 0x2A})
	if err != nil {
		t.Fatal(err)
	}
	got, wasTunnel, err := Decap(outer)
	if err != nil || !wasTunnel {
		t.Fatalf("erspan decap: %v %v", wasTunnel, err)
	}
	if got.Tunnel.VNI != 0x2A {
		t.Fatalf("session id = %d, want 42", got.Tunnel.VNI)
	}
	if !bytes.Equal(got.Data, inner.Data) {
		t.Fatal("mirrored frame corrupted")
	}
	// Sequence numbers increment per packet (the GRE seq extension the
	// backport case study revolves around).
	outer2, _ := e.Encap(inner, Config{Kind: ERSPAN, LocalIP: vtepA, RemoteIP: vtepB, VNI: 0x2A})
	g1, _ := hdr.ParseGRE(outer.Data[34:])
	g2, _ := hdr.ParseGRE(outer2.Data[34:])
	if !g1.HasSeq || !g2.HasSeq || g2.Seq != g1.Seq+1 {
		t.Fatalf("sequence numbers: %d then %d", g1.Seq, g2.Seq)
	}
}

func TestERSPANTruncatedHeaderRejected(t *testing.T) {
	e := NewEncapper(testCache(t))
	outer, err := e.Encap(packet.New(innerFrame()), Config{Kind: ERSPAN, LocalIP: vtepA, RemoteIP: vtepB, VNI: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the ERSPAN header (GRE w/ seq is 8 bytes; keep only 4 of
	// the 8 ERSPAN bytes).
	outer.Data = outer.Data[:34+8+4]
	if _, wasTunnel, err := Decap(outer); !wasTunnel || err == nil {
		t.Fatal("truncated ERSPAN must be recognized and rejected")
	}
}
