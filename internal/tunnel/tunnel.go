// Package tunnel implements the L3 encapsulations NSX relies on — Geneve
// (its default), VXLAN, and GRE — as OVS userspace implementations
// (Section 4: the kernel's encapsulations are unavailable once packet
// processing leaves the kernel, so "OVS implements all of these in
// userspace too").
//
// Encapsulation needs IP routing and ARP for the outer header; those come
// from the netlinksim userspace replica cache, mirroring how OVS resolves
// tunnel next hops from its cached kernel tables.
package tunnel

import (
	"fmt"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

// Kind is the encapsulation protocol.
type Kind int

// Tunnel kinds.
const (
	Geneve Kind = iota
	VXLAN
	GRE
	// ERSPAN is the type-II encapsulation whose out-of-tree backport
	// cost the paper's Section 2.1.1 quantifies ("about 50 lines of
	// code in the kernel module ... over 5,000 lines [out-of-tree]"):
	// a GRE tunnel with sequence numbers and an ERSPAN header carrying
	// the session id.
	ERSPAN
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Geneve:
		return "geneve"
	case VXLAN:
		return "vxlan"
	case ERSPAN:
		return "erspan"
	default:
		return "gre"
	}
}

// Config describes one tunnel.
type Config struct {
	Kind     Kind
	LocalIP  hdr.IP4
	RemoteIP hdr.IP4
	VNI      uint32
	// Options are Geneve TLVs (NSX carries its virtual network context
	// here).
	Options []hdr.GeneveOption
}

// Encapper wraps packets using next hops resolved from the replica cache.
type Encapper struct {
	cache  *netlinksim.Cache
	erspan erspanState
}

// NewEncapper builds an encapper over the replica cache.
func NewEncapper(cache *netlinksim.Cache) *Encapper {
	return &Encapper{cache: cache}
}

// ErrNoRoute reports an unresolvable tunnel destination.
type ErrNoRoute struct{ Dst hdr.IP4 }

func (e ErrNoRoute) Error() string {
	return fmt.Sprintf("tunnel: no route/ARP entry for remote %s", e.Dst)
}

// Encap wraps p's frame for the tunnel and returns the outer packet (a new
// packet; p is not modified). The outer source port is derived from the
// inner flow's RSS hash so that underlay RSS spreads distinct inner flows,
// as real OVS does.
func (e *Encapper) Encap(p *packet.Packet, cfg Config) (*packet.Packet, error) {
	link, dstMAC, ok := e.cache.ResolveNextHop(cfg.RemoteIP)
	if !ok {
		return nil, ErrNoRoute{cfg.RemoteIP}
	}
	srcPort := uint16(0xC000 | (flow.RSSHash(flow.Extract(p)) & 0x3FFF))

	var outer []byte
	switch cfg.Kind {
	case Geneve:
		outer = hdr.EncapGeneve(p.Data, link.MAC, dstMAC, cfg.LocalIP, cfg.RemoteIP, srcPort, cfg.VNI, cfg.Options)
	case VXLAN:
		outer = encapVXLAN(p.Data, link.MAC, dstMAC, cfg.LocalIP, cfg.RemoteIP, srcPort, cfg.VNI)
	case GRE:
		outer = encapGRE(p.Data, link.MAC, dstMAC, cfg.LocalIP, cfg.RemoteIP, cfg.VNI)
	case ERSPAN:
		outer = e.encapERSPAN(p.Data, link.MAC, dstMAC, cfg.LocalIP, cfg.RemoteIP, cfg.VNI)
	default:
		return nil, fmt.Errorf("tunnel: unknown kind %d", cfg.Kind)
	}
	out := packet.New(outer)
	out.Metadata = p.Metadata
	out.L3Offset = hdr.EthernetSize
	out.L4Offset = hdr.EthernetSize + hdr.IPv4MinSize
	out.Tunnel = nil
	// The outer checksum was computed in software by the encapsulation
	// unless hardware fills it later; carry the partial flag through.
	return out, nil
}

func encapVXLAN(inner []byte, srcMAC, dstMAC hdr.MAC, src, dst hdr.IP4, srcPort uint16, vni uint32) []byte {
	udpLen := hdr.UDPSize + hdr.VXLANSize + len(inner)
	out := make([]byte, hdr.EthernetSize+hdr.IPv4MinSize+udpLen)
	eth := hdr.Ethernet{Src: srcMAC, Dst: dstMAC, Type: hdr.EtherTypeIPv4}
	off := eth.SerializeTo(out)
	ip := hdr.IPv4{Src: src, Dst: dst, TTL: 64, Proto: hdr.IPProtoUDP,
		TotalLen: uint16(hdr.IPv4MinSize + udpLen), DontFrag: true}
	off += ip.SerializeTo(out[off:])
	udp := hdr.UDP{SrcPort: srcPort, DstPort: hdr.VXLANPort, Length: uint16(udpLen)}
	off += udp.SerializeTo(out[off:])
	v := hdr.VXLAN{VNI: vni}
	off += v.SerializeTo(out[off:])
	copy(out[off:], inner)
	hdr.PutUDPChecksum(src, dst, out[hdr.EthernetSize+hdr.IPv4MinSize:])
	return out
}

func encapGRE(inner []byte, srcMAC, dstMAC hdr.MAC, src, dst hdr.IP4, key uint32) []byte {
	g := hdr.GRE{Protocol: hdr.EtherTypeTransparentEtherBridging, HasKey: true, Key: key}
	gLen := g.SerializedLen()
	out := make([]byte, hdr.EthernetSize+hdr.IPv4MinSize+gLen+len(inner))
	eth := hdr.Ethernet{Src: srcMAC, Dst: dstMAC, Type: hdr.EtherTypeIPv4}
	off := eth.SerializeTo(out)
	ip := hdr.IPv4{Src: src, Dst: dst, TTL: 64, Proto: hdr.IPProtoGRE,
		TotalLen: uint16(hdr.IPv4MinSize + gLen + len(inner)), DontFrag: true}
	off += ip.SerializeTo(out[off:])
	off += g.SerializeTo(out[off:])
	copy(out[off:], inner)
	return out
}

// erspanSeq tracks the per-encapper ERSPAN sequence number.
type erspanState struct{ seq uint32 }

// encapERSPAN wraps a mirrored frame in GRE with the sequence-number
// extension and an 8-byte ERSPAN type-II header whose session id is the
// tunnel key.
func (e *Encapper) encapERSPAN(inner []byte, srcMAC, dstMAC hdr.MAC, src, dst hdr.IP4, session uint32) []byte {
	e.erspan.seq++
	g := hdr.GRE{Protocol: hdr.EtherTypeERSPAN, HasSeq: true, Seq: e.erspan.seq}
	gLen := g.SerializedLen()
	const erspanHdr = 8
	out := make([]byte, hdr.EthernetSize+hdr.IPv4MinSize+gLen+erspanHdr+len(inner))
	eth := hdr.Ethernet{Src: srcMAC, Dst: dstMAC, Type: hdr.EtherTypeIPv4}
	off := eth.SerializeTo(out)
	ip := hdr.IPv4{Src: src, Dst: dst, TTL: 64, Proto: hdr.IPProtoGRE,
		TotalLen: uint16(hdr.IPv4MinSize + gLen + erspanHdr + len(inner)), DontFrag: true}
	off += ip.SerializeTo(out[off:])
	off += g.SerializeTo(out[off:])
	// ERSPAN type II: version(4)=1 | vlan(12), cos/en/t | session(10),
	// reserved | index.
	out[off] = 0x10 // version 1 (type II)
	out[off+2] = byte(session >> 8 & 0x03)
	out[off+3] = byte(session)
	off += erspanHdr
	copy(out[off:], inner)
	return out
}

// Decap recognizes and strips a tunnel header, returning the inner packet
// with TunnelInfo metadata attached. The second return reports whether the
// packet was tunneled at all; an error means a tunnel was recognized but
// malformed.
func Decap(p *packet.Packet) (*packet.Packet, bool, error) {
	d := p.Data
	eth, err := hdr.ParseEthernet(d)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return nil, false, nil
	}
	ip, err := hdr.ParseIPv4(d[eth.HeaderLen:])
	if err != nil {
		return nil, false, nil
	}
	l4 := d[eth.HeaderLen+ip.HeaderLen:]

	switch ip.Proto {
	case hdr.IPProtoUDP:
		udp, err := hdr.ParseUDP(l4)
		if err != nil {
			return nil, false, nil
		}
		switch udp.DstPort {
		case hdr.GenevePort:
			g, err := hdr.ParseGeneve(l4[hdr.UDPSize:])
			if err != nil {
				return nil, true, err
			}
			inner := innerPacket(p, l4[hdr.UDPSize+g.HeaderLen:], ip, g.VNI)
			if len(g.Options) > 0 {
				inner.Tunnel.OptData = append([]byte(nil), g.Options[0].Data...)
			}
			return inner, true, nil
		case hdr.VXLANPort:
			v, err := hdr.ParseVXLAN(l4[hdr.UDPSize:])
			if err != nil {
				return nil, true, err
			}
			return innerPacket(p, l4[hdr.UDPSize+hdr.VXLANSize:], ip, v.VNI), true, nil
		}
		return nil, false, nil
	case hdr.IPProtoGRE:
		g, err := hdr.ParseGRE(l4)
		if err != nil {
			return nil, true, err
		}
		if g.Protocol == hdr.EtherTypeERSPAN {
			const erspanHdr = 8
			if len(l4) < g.HeaderLen+erspanHdr {
				return nil, true, hdr.ErrTruncated{Layer: "erspan", Need: g.HeaderLen + erspanHdr, Have: len(l4)}
			}
			session := uint32(l4[g.HeaderLen+2]&0x03)<<8 | uint32(l4[g.HeaderLen+3])
			return innerPacket(p, l4[g.HeaderLen+erspanHdr:], ip, session), true, nil
		}
		return innerPacket(p, l4[g.HeaderLen:], ip, g.Key), true, nil
	default:
		return nil, false, nil
	}
}

func innerPacket(outer *packet.Packet, payload []byte, outerIP hdr.IPv4, vni uint32) *packet.Packet {
	inner := packet.New(payload)
	inner.InPort = outer.InPort
	inner.Offloads = outer.Offloads
	inner.Tunnel = &packet.TunnelInfo{
		SrcIP: outerIP.Src,
		DstIP: outerIP.Dst,
		VNI:   vni,
	}
	return inner
}
