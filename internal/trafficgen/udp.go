// Package trafficgen implements the paper's three workload generators:
//
//   - UDPGen, the TRex analog (Section 5.2): constant-rate UDP streams of
//     configurable frame size over 1..N flows, used with measure's
//     lossless-rate search;
//   - Bulk, the iperf analog (Section 5.1): a windowed bulk-TCP transfer
//     with MSS segmentation, optional TSO-sized sends, and ack clocking,
//     driven through real datapath components;
//   - RR, the netperf TCP_RR analog (Section 5.3): single-transaction
//     ping-pong measuring the latency distribution.
package trafficgen

import (
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// UDPGen generates a constant-rate stream of UDP frames across Flows
// distinct 5-tuples (round-robin with per-flow deterministic addresses,
// matching the paper's "random source and destination IPs out of 1,000
// possibilities").
type UDPGen struct {
	Eng       *sim.Engine
	Flows     int
	FrameSize int // on-wire frame size including the 4-byte FCS the paper quotes
	SrcMAC    hdr.MAC
	DstMAC    hdr.MAC
	// Sink receives generated packets (typically nic.Receive).
	Sink func(*packet.Packet)

	// Sent counts generated packets.
	Sent uint64

	templates [][]byte
	idx       int
	stopped   bool

	// pool recycles packet metadata and buffers: frames released by their
	// terminal consumer (a NIC drop, an XSK copy, a test sink) come back
	// here, so steady-state generation allocates nothing. Overflow falls
	// back to the heap gracefully (pool.Allocs counts it).
	pool *packet.Pool
}

// genPoolSize bounds in-flight generated frames; NIC rings and XSK rings
// together hold a few thousand at most.
const genPoolSize = 4096

// NewUDPGen prebuilds per-flow frame templates.
func NewUDPGen(eng *sim.Engine, flows, frameSize int, sink func(*packet.Packet)) *UDPGen {
	if flows <= 0 {
		flows = 1
	}
	g := &UDPGen{Eng: eng, Flows: flows, FrameSize: frameSize,
		SrcMAC: hdr.MAC{0x02, 0xaa, 0, 0, 0, 1},
		DstMAC: hdr.MAC{0x02, 0xbb, 0, 0, 0, 1},
		Sink:   sink}
	rnd := eng.Rand().Fork()
	for i := 0; i < flows; i++ {
		src := hdr.MakeIP4(10, 0, byte(rnd.Intn(250)), byte(1+rnd.Intn(250)))
		dst := hdr.MakeIP4(10, 1, byte(rnd.Intn(250)), byte(1+rnd.Intn(250)))
		sport := uint16(1024 + rnd.Intn(40000))
		dport := uint16(1024 + rnd.Intn(40000))
		// The builder pads to frameSize-4 host-visible bytes (the FCS
		// is on the wire only); payload fills the rest.
		payload := frameSize - 4 - hdr.EthernetSize - hdr.IPv4MinSize - hdr.UDPSize
		if payload < 0 {
			payload = 0
		}
		frame := hdr.NewBuilder().Eth(g.SrcMAC, g.DstMAC).
			IPv4H(src, dst, 64).UDPH(sport, dport).
			PayloadLen(payload).Build()
		g.templates = append(g.templates, frame)
	}
	bufSize := frameSize
	if bufSize < 64 {
		bufSize = 64
	}
	g.pool = packet.NewPool(genPoolSize, bufSize, true)
	return g
}

// Next builds the next packet (round-robin across flows).
func (g *UDPGen) Next() *packet.Packet {
	tpl := g.templates[g.idx%len(g.templates)]
	g.idx++
	return g.pool.GetCopy(tpl)
}

// Run generates arrivals at ratePPS for the duration, starting now. The
// generator self-schedules one event at a time so the engine's event heap
// stays small even at tens of millions of packets per second.
func (g *UDPGen) Run(ratePPS float64, duration sim.Time) {
	if ratePPS <= 0 {
		return
	}
	interval := sim.Time(float64(sim.Second) / ratePPS)
	if interval <= 0 {
		interval = 1
	}
	start := g.Eng.Now()
	end := start + duration
	var tick func()
	next := start
	tick = func() {
		if g.stopped {
			return
		}
		g.Sent++
		g.Sink(g.Next())
		next += interval
		if next < end {
			g.Eng.ScheduleAt(next, tick)
		}
	}
	g.Eng.ScheduleAt(next, tick)
}

// Stop prevents further generation (already-scheduled arrivals still fire;
// use short Run windows instead for precise cuts).
func (g *UDPGen) Stop() { g.stopped = true }
