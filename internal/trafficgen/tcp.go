package trafficgen

import (
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// BulkConfig parameterizes an iperf-style transfer.
type BulkConfig struct {
	Eng *sim.Engine

	// MSS is the TCP maximum segment size (1460 for a 1500 MTU).
	MSS int
	// SendSize is the bytes handed to each send(): 64 kB when TSO lets
	// the stack emit oversized segments, MSS otherwise.
	SendSize int
	// Window is the maximum unacknowledged bytes in flight.
	Window int
	// AckEvery acknowledges every n-th data segment (delayed acks: 2).
	AckEvery int

	// Addressing for the generated segments.
	SrcMAC, DstMAC   hdr.MAC
	SrcIP, DstIP     hdr.IP4
	SrcPort, DstPort uint16

	// MarkTSO marks oversized segments with SegSize so the path's
	// TSO/software-segmentation machinery engages.
	MarkTSO bool
	// MarkCsumPartial marks data segments for checksum offload
	// (negotiated virtio offloads); otherwise they carry CsumVerified.
	MarkCsumPartial bool

	// SenderCharge runs before each send() (stack + syscall costs on the
	// sender's CPU).
	SenderCharge func(bytes int)
	// ReceiverCharge runs for each delivered data packet.
	ReceiverCharge func(bytes int)
	// AckCharge runs for each delivered ack on the sender side.
	AckCharge func()

	// SendData injects a data segment into the forward path.
	SendData func(*packet.Packet)
	// SendAck injects an ack into the reverse path.
	SendAck func(*packet.Packet)
}

// Bulk is one running transfer. The experiment's receiver endpoint calls
// OnDataArrived for every data packet that reaches it; the sender endpoint
// calls OnAckArrived for every returning ack. The transfer self-clocks:
// acks open the window, the pump refills it.
type Bulk struct {
	cfg BulkConfig

	seq       uint64
	inflight  int
	delivered uint64
	lastAcked uint32
	ackPend   int
	started   sim.Time
	firstByte sim.Time
	pumping   bool
}

// NewBulk builds a transfer.
func NewBulk(cfg BulkConfig) *Bulk {
	if cfg.MSS <= 0 {
		cfg.MSS = 1460
	}
	if cfg.SendSize <= 0 {
		cfg.SendSize = cfg.MSS
	}
	if cfg.Window <= 0 {
		cfg.Window = 256 * 1024
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 2
	}
	return &Bulk{cfg: cfg}
}

// Start begins pumping data.
func (b *Bulk) Start() {
	b.started = b.cfg.Eng.Now()
	b.pump()
}

// pump sends while the window has room.
func (b *Bulk) pump() {
	if b.pumping {
		return
	}
	b.pumping = true
	defer func() { b.pumping = false }()
	for b.inflight+b.cfg.SendSize <= b.cfg.Window {
		payload := b.cfg.SendSize
		seg := b.buildSegment(payload)
		if b.cfg.SenderCharge != nil {
			b.cfg.SenderCharge(payload)
		}
		b.inflight += payload
		b.seq += uint64(payload)
		b.cfg.SendData(seg)
	}
}

func (b *Bulk) buildSegment(payload int) *packet.Packet {
	p := packet.New(hdr.NewBuilder().
		Eth(b.cfg.SrcMAC, b.cfg.DstMAC).
		IPv4H(b.cfg.SrcIP, b.cfg.DstIP, 64).
		TCPH(b.cfg.SrcPort, b.cfg.DstPort, uint32(b.seq), 0, hdr.TCPAck).
		PayloadLen(payload).Build())
	p.L3Offset = hdr.EthernetSize
	p.L4Offset = hdr.EthernetSize + hdr.IPv4MinSize
	if b.cfg.MarkTSO && payload > b.cfg.MSS {
		p.SegSize = b.cfg.MSS
		p.Offloads |= packet.TSO
	}
	if b.cfg.MarkCsumPartial {
		p.Offloads |= packet.CsumPartial
	} else {
		p.Offloads |= packet.CsumVerified
	}
	return p
}

// OnDataArrived is called by the receiver endpoint per delivered data
// packet; it returns acks through the reverse path per the ack policy.
func (b *Bulk) OnDataArrived(p *packet.Packet) {
	payload := len(p.Data) - 54
	if payload < 0 {
		payload = 0
	}
	if b.delivered == 0 {
		b.firstByte = b.cfg.Eng.Now()
	}
	b.delivered += uint64(payload)
	if b.cfg.ReceiverCharge != nil {
		b.cfg.ReceiverCharge(payload)
	}
	b.ackPend++
	if b.ackPend >= b.cfg.AckEvery {
		b.ackPend = 0
		// The ack number carries the cumulative bytes delivered, as TCP
		// does; the sender derives the newly-opened window from it.
		ack := packet.New(hdr.NewBuilder().
			Eth(b.cfg.DstMAC, b.cfg.SrcMAC).
			IPv4H(b.cfg.DstIP, b.cfg.SrcIP, 64).
			TCPH(b.cfg.DstPort, b.cfg.SrcPort, 0, uint32(b.delivered), hdr.TCPAck).
			PadTo(64).Build())
		ack.Offloads |= packet.CsumVerified
		b.cfg.SendAck(ack)
	}
}

// OnAckArrived is called by the sender endpoint per returning ack. The
// cumulative ack number is read from the TCP header, so intermediate hops
// may freely rewrite packet metadata.
func (b *Bulk) OnAckArrived(p *packet.Packet) {
	if b.cfg.AckCharge != nil {
		b.cfg.AckCharge()
	}
	ackNo := b.lastAcked
	if eth, err := hdr.ParseEthernet(p.Data); err == nil {
		if ip, err := hdr.ParseIPv4(p.Data[eth.HeaderLen:]); err == nil {
			if tcp, err := hdr.ParseTCP(p.Data[eth.HeaderLen+ip.HeaderLen:]); err == nil {
				ackNo = tcp.Ack
			}
		}
	}
	acked := int(int32(ackNo - b.lastAcked)) // cumulative, handles wrap
	if acked < 0 {
		acked = 0 // stale/duplicate ack
	}
	b.lastAcked = ackNo
	if acked > b.inflight {
		acked = b.inflight
	}
	b.inflight -= acked
	b.pump()
}

// DeliveredBytes returns payload bytes that reached the receiver.
func (b *Bulk) DeliveredBytes() uint64 { return b.delivered }

// ThroughputGbps computes goodput between the first delivered byte and
// now.
func (b *Bulk) ThroughputGbps() float64 {
	now := b.cfg.Eng.Now()
	if b.delivered == 0 || now <= b.firstByte {
		return 0
	}
	return float64(b.delivered) * 8 / (now - b.firstByte).Seconds() / 1e9
}

// --- netperf TCP_RR ---------------------------------------------------------

// RRConfig parameterizes a request/response latency test.
type RRConfig struct {
	Eng *sim.Engine
	// Transactions to run.
	Transactions int
	// Addressing.
	SrcMAC, DstMAC   hdr.MAC
	SrcIP, DstIP     hdr.IP4
	SrcPort, DstPort uint16

	// SendRequest injects a request into the forward path; SendResponse
	// the response into the reverse path.
	SendRequest  func(*packet.Packet)
	SendResponse func(*packet.Packet)
	// ClientDelay/ServerDelay sample the endpoint processing time per
	// message (includes scheduler-wakeup jitter); they run on virtual
	// time via the returned duration.
	ClientDelay func() sim.Time
	ServerDelay func() sim.Time
	// OnDone runs after the last transaction.
	OnDone func()
}

// RR is one running request/response test.
type RR struct {
	cfg       RRConfig
	Latencies *sim.Histogram
	completed int
	t0        sim.Time
}

// NewRR builds the test.
func NewRR(cfg RRConfig) *RR {
	if cfg.Transactions <= 0 {
		cfg.Transactions = 1000
	}
	return &RR{cfg: cfg, Latencies: sim.NewHistogram()}
}

// Start issues the first request.
func (r *RR) Start() { r.sendRequest() }

func (r *RR) sendRequest() {
	delay := sim.Time(0)
	if r.cfg.ClientDelay != nil {
		delay = r.cfg.ClientDelay()
	}
	r.cfg.Eng.Schedule(delay, func() {
		r.t0 = r.cfg.Eng.Now()
		req := packet.New(hdr.NewBuilder().
			Eth(r.cfg.SrcMAC, r.cfg.DstMAC).
			IPv4H(r.cfg.SrcIP, r.cfg.DstIP, 64).
			TCPH(r.cfg.SrcPort, r.cfg.DstPort, 1, 1, hdr.TCPAck|hdr.TCPPsh).
			PayloadLen(1).PadTo(64).Build())
		req.Offloads |= packet.CsumVerified
		r.cfg.SendRequest(req)
	})
}

// OnRequestArrived is called by the server endpoint; it schedules the
// response after the server delay.
func (r *RR) OnRequestArrived(*packet.Packet) {
	delay := sim.Time(0)
	if r.cfg.ServerDelay != nil {
		delay = r.cfg.ServerDelay()
	}
	r.cfg.Eng.Schedule(delay, func() {
		resp := packet.New(hdr.NewBuilder().
			Eth(r.cfg.DstMAC, r.cfg.SrcMAC).
			IPv4H(r.cfg.DstIP, r.cfg.SrcIP, 64).
			TCPH(r.cfg.DstPort, r.cfg.SrcPort, 1, 2, hdr.TCPAck|hdr.TCPPsh).
			PayloadLen(1).PadTo(64).Build())
		resp.Offloads |= packet.CsumVerified
		r.cfg.SendResponse(resp)
	})
}

// OnResponseArrived is called by the client endpoint; it records the RTT
// and starts the next transaction.
func (r *RR) OnResponseArrived(*packet.Packet) {
	r.Latencies.RecordTime(r.cfg.Eng.Now() - r.t0)
	r.completed++
	if r.completed < r.cfg.Transactions {
		r.sendRequest()
		return
	}
	if r.cfg.OnDone != nil {
		r.cfg.OnDone()
	}
}

// Completed returns finished transactions.
func (r *RR) Completed() int { return r.completed }

// TransactionsPerSec converts the mean RTT (plus endpoint delays embedded
// in it) into the netperf transaction rate.
func (r *RR) TransactionsPerSec() float64 {
	mean := r.Latencies.Mean()
	if mean <= 0 {
		return 0
	}
	return float64(sim.Second) / mean
}
