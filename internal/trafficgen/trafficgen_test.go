package trafficgen

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

func TestUDPGenRateAndFlowCount(t *testing.T) {
	eng := sim.NewEngine(7)
	var got []*packet.Packet
	g := NewUDPGen(eng, 10, 64, func(p *packet.Packet) { got = append(got, p) })
	g.Run(1e6, 10*sim.Millisecond) // 1 Mpps for 10 ms = 10,000 packets
	eng.Run()
	if len(got) != 10000 {
		t.Fatalf("generated %d packets, want 10000", len(got))
	}
	// Frames are 60 bytes host-visible (64 on the wire with FCS).
	if len(got[0].Data) != 60 {
		t.Fatalf("frame size = %d", len(got[0].Data))
	}
	// Distinct flows: 10.
	flows := map[string]bool{}
	for _, p := range got {
		eth, _ := hdr.ParseEthernet(p.Data)
		ip, _ := hdr.ParseIPv4(p.Data[eth.HeaderLen:])
		udp, _ := hdr.ParseUDP(p.Data[eth.HeaderLen+ip.HeaderLen:])
		flows[ip.Src.String()+ip.Dst.String()+string(rune(udp.SrcPort))+string(rune(udp.DstPort))] = true
	}
	if len(flows) != 10 {
		t.Fatalf("distinct flows = %d, want 10", len(flows))
	}
}

func TestUDPGenDeterministicPerSeed(t *testing.T) {
	build := func() []byte {
		eng := sim.NewEngine(42)
		var first []byte
		g := NewUDPGen(eng, 100, 64, func(p *packet.Packet) {
			if first == nil {
				first = p.Data
			}
		})
		g.Run(1e6, sim.Millisecond)
		eng.Run()
		return first
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatal("same seed must generate identical traffic")
	}
}

func TestBulkTransferThroughLosslessPath(t *testing.T) {
	// Wire sender directly to receiver with a constant path delay; the
	// transfer must deliver everything it sends and self-clock on acks.
	eng := sim.NewEngine(1)
	var bulk *Bulk
	cfg := BulkConfig{
		Eng: eng, MSS: 1460, SendSize: 1460, Window: 64 * 1024, AckEvery: 2,
		SrcMAC: hdr.MAC{2, 0, 0, 0, 0, 1}, DstMAC: hdr.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: hdr.MakeIP4(10, 0, 0, 1), DstIP: hdr.MakeIP4(10, 0, 0, 2),
		SrcPort: 5001, DstPort: 5001,
		SendData: func(p *packet.Packet) {
			eng.Schedule(10*sim.Microsecond, func() { bulk.OnDataArrived(p) })
		},
		SendAck: func(p *packet.Packet) {
			eng.Schedule(10*sim.Microsecond, func() { bulk.OnAckArrived(p) })
		},
	}
	bulk = NewBulk(cfg)
	bulk.Start()
	eng.RunUntil(50 * sim.Millisecond)

	if bulk.DeliveredBytes() == 0 {
		t.Fatal("nothing delivered")
	}
	// Window-limited throughput: W/RTT = 64kB / 20us ~ 26 Gbps.
	gbps := bulk.ThroughputGbps()
	if gbps < 15 || gbps > 40 {
		t.Fatalf("throughput = %.1f Gbps, want ~26 (window/RTT)", gbps)
	}
}

func TestBulkWindowLimitsInflight(t *testing.T) {
	eng := sim.NewEngine(1)
	sent := 0
	var bulk *Bulk
	bulk = NewBulk(BulkConfig{
		Eng: eng, MSS: 1460, SendSize: 1460, Window: 8 * 1460, AckEvery: 2,
		SendData: func(p *packet.Packet) { sent++ }, // black hole: no acks
		SendAck:  func(p *packet.Packet) {},
	})
	bulk.Start()
	eng.Run()
	if sent != 8 {
		t.Fatalf("sent %d segments into a black hole, want window/MSS = 8", sent)
	}
}

func TestBulkTSOAndOffloadMarks(t *testing.T) {
	eng := sim.NewEngine(1)
	var seg *packet.Packet
	bulk := NewBulk(BulkConfig{
		Eng: eng, MSS: 1460, SendSize: 65536, Window: 65536,
		MarkTSO: true, MarkCsumPartial: true,
		SendData: func(p *packet.Packet) {
			if seg == nil {
				seg = p
			}
		},
		SendAck: func(p *packet.Packet) {},
	})
	bulk.Start()
	if seg == nil {
		t.Fatal("no segment sent")
	}
	if seg.SegSize != 1460 || seg.Offloads&packet.TSO == 0 {
		t.Fatalf("TSO marks missing: seg=%d off=%v", seg.SegSize, seg.Offloads)
	}
	if seg.Offloads&packet.CsumPartial == 0 {
		t.Fatal("csum partial mark missing")
	}
	if len(seg.Data) < 65536 {
		t.Fatalf("oversized segment len = %d", len(seg.Data))
	}
}

func TestBulkChargesEndpoints(t *testing.T) {
	eng := sim.NewEngine(1)
	senderCharged, receiverCharged := 0, 0
	var bulk *Bulk
	bulk = NewBulk(BulkConfig{
		Eng: eng, MSS: 100, SendSize: 100, Window: 200, AckEvery: 1,
		SenderCharge:   func(bytes int) { senderCharged += bytes },
		ReceiverCharge: func(bytes int) { receiverCharged += bytes },
		SendData:       func(p *packet.Packet) { eng.Schedule(1, func() { bulk.OnDataArrived(p) }) },
		SendAck:        func(p *packet.Packet) { eng.Schedule(1, func() { bulk.OnAckArrived(p) }) },
	})
	bulk.Start()
	eng.RunUntil(sim.Millisecond)
	if senderCharged == 0 || receiverCharged == 0 {
		t.Fatal("endpoint charges not applied")
	}
}

func TestRRMeasuresRTT(t *testing.T) {
	eng := sim.NewEngine(3)
	var rr *RR
	rr = NewRR(RRConfig{
		Eng: eng, Transactions: 500,
		SrcMAC: hdr.MAC{2, 0, 0, 0, 0, 1}, DstMAC: hdr.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: hdr.MakeIP4(10, 0, 0, 1), DstIP: hdr.MakeIP4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 12865,
		SendRequest: func(p *packet.Packet) {
			eng.Schedule(20*sim.Microsecond, func() { rr.OnRequestArrived(p) })
		},
		SendResponse: func(p *packet.Packet) {
			eng.Schedule(20*sim.Microsecond, func() { rr.OnResponseArrived(p) })
		},
		ServerDelay: func() sim.Time { return sim.Time(eng.Rand().Exp(5000)) },
	})
	rr.Start()
	eng.Run()

	if rr.Completed() != 500 {
		t.Fatalf("completed %d/500", rr.Completed())
	}
	s := rr.Latencies.Summarize()
	// Fixed path 40us + Exp(5us) server time: P50 ~ 43.5us, long tail.
	if s.P50 < 40e3 || s.P50 > 55e3 {
		t.Fatalf("P50 = %.1f us", s.P50/1e3)
	}
	if s.P99 <= s.P50 {
		t.Fatal("exponential server delay must produce a tail")
	}
	tps := rr.TransactionsPerSec()
	if tps < 15000 || tps > 25000 {
		t.Fatalf("transactions/s = %.0f, want ~22k", tps)
	}
}
