package svc

import (
	"fmt"
	"net/http"
	"strings"

	"ovsxdp/internal/api"
	"ovsxdp/internal/sim"
)

// handleMetrics renders the Prometheus text exposition format (0.0.4) by
// hand — the repo takes no dependencies — from one atomic snapshot of
// every datapath taken with the engine paused, so scraped counters can
// never tear against each other.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type snap struct {
		name  string
		stats api.StatsView
		perf  api.PerfView
	}
	var snaps []snap
	var now sim.Time
	s.do(func() {
		now = s.ctl.Engine().Now()
		for _, t := range s.dps {
			snaps = append(snaps, snap{
				name:  t.Name,
				stats: api.NewStatsView(t.DP.Type(), t.DP.Stats().Clone(), t.DP.PerfStats(), t.DP.PortCount()),
				perf:  api.NewPerfView(t.DP.PerfStats()),
			})
		}
	})

	var b strings.Builder
	metric := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	metric("ovsxdp_virtual_time_seconds", "Virtual time of the simulation engine.", "gauge")
	fmt.Fprintf(&b, "ovsxdp_virtual_time_seconds %g\n", now.Seconds())

	counter := func(name, help string, value func(st api.StatsView) uint64) {
		metric(name, help, "counter")
		for _, sn := range snaps {
			fmt.Fprintf(&b, "%s{datapath=%q} %d\n", name, sn.name, value(sn.stats))
		}
	}
	gauge := func(name, help string, value func(st api.StatsView) int) {
		metric(name, help, "gauge")
		for _, sn := range snaps {
			fmt.Fprintf(&b, "%s{datapath=%q} %d\n", name, sn.name, value(sn.stats))
		}
	}

	counter("ovsxdp_lookups_hit_total", "Datapath flow-table lookup hits.",
		func(st api.StatsView) uint64 { return st.Hits })
	counter("ovsxdp_lookups_missed_total", "Lookups that upcalled to the slow path.",
		func(st api.StatsView) uint64 { return st.Missed })
	counter("ovsxdp_lookups_lost_total", "Packets dropped in the datapath.",
		func(st api.StatsView) uint64 { return st.Lost })
	counter("ovsxdp_slowpath_processed_total", "Slow-path upcalls processed.",
		func(st api.StatsView) uint64 { return st.Processed })
	counter("ovsxdp_upcall_queue_drops_total", "Packets refused at the bounded upcall queue.",
		func(st api.StatsView) uint64 { return st.UpcallQueueDrops })
	counter("ovsxdp_malformed_drops_total", "Slow-path parse failures.",
		func(st api.StatsView) uint64 { return st.MalformedDrops })
	gauge("ovsxdp_megaflows", "Installed megaflow entries.",
		func(st api.StatsView) int { return st.Flows })
	gauge("ovsxdp_ports", "Attached datapath ports.",
		func(st api.StatsView) int { return st.Ports })

	zero := func(o *api.OffloadStatsView) api.OffloadStatsView {
		if o == nil {
			return api.OffloadStatsView{}
		}
		return *o
	}
	counter("ovsxdp_offload_hits_total", "Packets forwarded by the NIC hardware flow table.",
		func(st api.StatsView) uint64 { return zero(st.Offload).Hits })
	counter("ovsxdp_offload_installs_total", "Hardware flow-table installs.",
		func(st api.StatsView) uint64 { return zero(st.Offload).Installs })
	counter("ovsxdp_offload_evictions_total", "Hardware flow-table evictions.",
		func(st api.StatsView) uint64 { return zero(st.Offload).Evictions })
	counter("ovsxdp_offload_uninstalls_total", "Hardware flow-table uninstalls.",
		func(st api.StatsView) uint64 { return zero(st.Offload).Uninstalls })
	gauge("ovsxdp_offload_live", "Hardware flow-table occupancy.",
		func(st api.StatsView) int { return zero(st.Offload).Live })

	zct := func(c *api.CtStatsView) api.CtStatsView {
		if c == nil {
			return api.CtStatsView{}
		}
		return *c
	}
	gauge("ovsxdp_ct_conns", "Live tracked connections.",
		func(st api.StatsView) int { return zct(st.Conntrack).Conns })
	counter("ovsxdp_ct_created_total", "Connections committed.",
		func(st api.StatsView) uint64 { return zct(st.Conntrack).Created })
	counter("ovsxdp_ct_expired_total", "Connections expired by timeout.",
		func(st api.StatsView) uint64 { return zct(st.Conntrack).Expired })
	counter("ovsxdp_ct_early_drops_total", "Embryonic connections shed under pressure.",
		func(st api.StatsView) uint64 { return zct(st.Conntrack).EarlyDrops })
	counter("ovsxdp_ct_evictions_total", "Connections LRU-evicted under pressure.",
		func(st api.StatsView) uint64 { return zct(st.Conntrack).Evictions })

	metric("ovsxdp_ct_zone_conns", "Live tracked connections per zone.", "gauge")
	for _, sn := range snaps {
		for _, z := range zct(sn.stats.Conntrack).PerZone {
			fmt.Fprintf(&b, "ovsxdp_ct_zone_conns{datapath=%q,zone=\"%d\"} %d\n", sn.name, z.Zone, z.Conns)
		}
	}

	metric("ovsxdp_thread_packets_total", "Packets processed per thread.", "counter")
	for _, sn := range snaps {
		for _, th := range sn.perf.Threads {
			fmt.Fprintf(&b, "ovsxdp_thread_packets_total{datapath=%q,thread=%q} %d\n", sn.name, th.Name, th.Packets)
		}
	}
	metric("ovsxdp_thread_stage_cycles_total", "Virtual cycles charged per thread and stage.", "counter")
	for _, sn := range snaps {
		for _, th := range sn.perf.Threads {
			for _, st := range th.Stages {
				fmt.Fprintf(&b, "ovsxdp_thread_stage_cycles_total{datapath=%q,thread=%q,stage=%q} %d\n",
					sn.name, th.Name, st.Stage, st.Cycles)
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}
