// The svc handler suite drives every RouteTable endpoint over real HTTP
// against a live AF_XDP bed, including the error paths (404/405/400) and
// the all-or-nothing config batch. It runs traffic first so counters and
// flows are nonzero, then serves from an idle-parked controller — exactly
// the daemon's post-window state.
package svc_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ovsxdp/internal/api"
	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/experiments"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/svc"
)

const testWindow = 2 * sim.Millisecond

// newTestServer runs a short traffic window on a small bed, then leaves the
// controller idle-serving and the API live.
func newTestServer(t *testing.T) (*httptest.Server, *experiments.Bed) {
	t.Helper()
	cfg := experiments.DefaultBed(experiments.KindAFXDP, 16)
	bed := experiments.NewP2PBed(cfg)
	ctl := core.NewController(bed.Eng)
	inj := faultinject.New(bed.Eng)
	server := svc.NewServer(ctl, svc.Target{Name: "t0", DP: bed.DP})
	server.SetInjector(inj)

	bed.Gen.Run(1e6, testWindow)
	ctl.Run(testWindow)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { ctl.ServeIdle(stop); close(done) }()
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(func() { ts.Close(); close(stop); <-done })
	return ts, bed
}

// doReq issues one request and returns status and body.
func doReq(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRouteTableServes walks the canonical route table end to end: every
// documented route must answer a well-formed request with success. This is
// the lint the CI step runs — the table cannot describe routes the mux does
// not serve.
func TestRouteTableServes(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, r := range svc.RouteTable {
		path := strings.ReplaceAll(r.Pattern, "{name}", "t0")
		body, want := "", http.StatusOK
		switch {
		case r.Method == "PUT" && r.Pattern == "/v1/config":
			body = `{"values":{"emc-enable":"true"}}`
		case r.Method == "POST" && r.Pattern == "/v1/faults":
			body = `{"kind":"upcall-failure","target":"upcall","at_us":0,"duration_us":100}`
			want = http.StatusAccepted
		}
		status, data := doReq(t, ts, r.Method, path, body)
		if status != want {
			t.Errorf("%s %s = %d, want %d: %s", r.Method, path, status, want, data)
		}
		if r.Pattern == "/metrics" {
			continue // text exposition, no envelope
		}
		var env struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Schema != api.SchemaAPI {
			t.Errorf("%s %s: body missing schema envelope %q: %s", r.Method, path, api.SchemaAPI, data)
		}
	}
}

// TestErrorPaths pins every 404/405/400 contract.
func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/datapaths/nope/stats", "", http.StatusNotFound},
		{"GET", "/v1/pmd/perf?datapath=nope", "", http.StatusNotFound},
		{"GET", "/v1/flows?datapath=nope", "", http.StatusNotFound},
		{"GET", "/v1/config?datapath=nope", "", http.StatusNotFound},
		{"GET", "/v1/flows?offset=x", "", http.StatusBadRequest},
		{"GET", "/v1/flows?limit=-1", "", http.StatusBadRequest},
		{"PUT", "/v1/config", "{not json", http.StatusBadRequest},
		{"PUT", "/v1/config", `{"values":{}}`, http.StatusBadRequest},
		{"POST", "/v1/faults", `{"kind":"meteor-strike","target":"x","duration_us":1}`, http.StatusBadRequest},
		{"POST", "/v1/faults", `{"kind":"upcall-failure","target":"x","duration_us":0}`, http.StatusBadRequest},
		{"DELETE", "/v1/config", "", http.StatusMethodNotAllowed},
		{"POST", "/v1/datapaths", "", http.StatusMethodNotAllowed},
		{"PUT", "/v1/faults", "", http.StatusMethodNotAllowed},
		{"GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, c := range cases {
		status, data := doReq(t, ts, c.method, c.path, c.body)
		if status != c.want {
			t.Errorf("%s %s = %d, want %d: %s", c.method, c.path, status, c.want, data)
		}
	}
}

// TestConfigUnknownKeyErrorMatchesCLI pins the shared-schema satellite: the
// API rejects an unknown other_config key with the *identical* error text
// `ovsctl set` prints, because both go through the one dpif schema.
func TestConfigUnknownKeyErrorMatchesCLI(t *testing.T) {
	ts, _ := newTestServer(t)
	status, data := doReq(t, ts, "PUT", "/v1/config", `{"values":{"no-such-key":"1"}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown key = %d, want 400: %s", status, data)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	want := dpif.CheckConfig(map[string]string{"no-such-key": "1"}).Error()
	if body.Error != want {
		t.Fatalf("error text diverged from the dpif schema:\n api: %s\n cli: %s", body.Error, want)
	}
}

// TestConfigBatchAllOrNothing: a batch with one bad key must change
// nothing, even if other keys in it are valid.
func TestConfigBatchAllOrNothing(t *testing.T) {
	ts, _ := newTestServer(t)
	readEmc := func() string {
		_, data := doReq(t, ts, "GET", "/v1/config", "")
		var body struct {
			Values map[string]string `json:"values"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatal(err)
		}
		return body.Values["emc-enable"]
	}
	before := readEmc()
	flip := "false"
	if before == "false" {
		flip = "true"
	}
	status, data := doReq(t, ts, "PUT", "/v1/config",
		`{"values":{"emc-enable":"`+flip+`","no-such-key":"1"}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("mixed batch = %d, want 400: %s", status, data)
	}
	if after := readEmc(); after != before {
		t.Fatalf("rejected batch still applied: emc-enable %q -> %q", before, after)
	}
}

// TestConfigPutApplies: a valid mutation lands and the response echoes the
// new effective config.
func TestConfigPutApplies(t *testing.T) {
	ts, _ := newTestServer(t)
	status, data := doReq(t, ts, "PUT", "/v1/config", `{"values":{"smc-enable":"true"}}`)
	if status != http.StatusOK {
		t.Fatalf("PUT = %d: %s", status, data)
	}
	var body struct {
		Values map[string]string `json:"values"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Values["smc-enable"] != "true" {
		t.Fatalf("response config shows smc-enable=%q, want true", body.Values["smc-enable"])
	}
}

// TestFaultPastStartClamps: a fault armed in the virtual past starts now.
func TestFaultPastStartClamps(t *testing.T) {
	ts, _ := newTestServer(t)
	status, data := doReq(t, ts, "POST", "/v1/faults",
		`{"kind":"upcall-failure","target":"upcall","at_us":0,"duration_us":50}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", status, data)
	}
	var body struct {
		ArmedAtUs int64 `json:"armed_at_us"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if want := int64(testWindow / sim.Microsecond); body.ArmedAtUs != want {
		t.Fatalf("armed_at_us = %d, want clamped to %d", body.ArmedAtUs, want)
	}
}

// TestFaultsWithoutInjector: a server never armed with an injector refuses.
func TestFaultsWithoutInjector(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := core.NewController(eng)
	server := svc.NewServer(ctl)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { ctl.ServeIdle(stop); close(done) }()
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(func() { ts.Close(); close(stop); <-done })
	status, _ := doReq(t, ts, "POST", "/v1/faults",
		`{"kind":"upcall-failure","target":"x","duration_us":1}`)
	if status != http.StatusBadRequest {
		t.Fatalf("faults without injector = %d, want 400", status)
	}
}

// TestStatsAndFlows: stats reflect the traffic window and the flow dump
// pages correctly.
func TestStatsAndFlows(t *testing.T) {
	ts, bed := newTestServer(t)
	_, data := doReq(t, ts, "GET", "/v1/datapaths/t0/stats", "")
	var sb struct {
		Stats api.StatsView `json:"stats"`
	}
	if err := json.Unmarshal(data, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Stats.Hits == 0 {
		t.Fatal("stats over HTTP show zero hits after a traffic window")
	}
	if sb.Stats.Hits+sb.Stats.Missed < bed.Delivered {
		t.Fatalf("lookups (%d) < delivered (%d)", sb.Stats.Hits+sb.Stats.Missed, bed.Delivered)
	}

	_, data = doReq(t, ts, "GET", "/v1/flows", "")
	var all struct{ api.FlowPage }
	if err := json.Unmarshal(data, &all); err != nil {
		t.Fatal(err)
	}
	if all.Total == 0 || len(all.Flows) != all.Total {
		t.Fatalf("unpaged dump: total=%d flows=%d", all.Total, len(all.Flows))
	}
	_, data = doReq(t, ts, "GET", "/v1/flows?limit=1", "")
	var page struct{ api.FlowPage }
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != all.Total || len(page.Flows) != 1 {
		t.Fatalf("paged dump: total=%d flows=%d", page.Total, len(page.Flows))
	}
	if page.Flows[0] != all.Flows[0] {
		t.Fatal("first page does not match the unpaged dump")
	}
	_, data = doReq(t, ts, "GET", fmt.Sprintf("/v1/flows?offset=%d", all.Total), "")
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != all.Total || len(page.Flows) != 0 {
		t.Fatalf("past-the-end page: total=%d flows=%d, want empty", page.Total, len(page.Flows))
	}
}

// TestMetricsExposition: the Prometheus endpoint speaks text format 0.0.4
// and carries the core series.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"ovsxdp_virtual_time_seconds",
		`ovsxdp_lookups_hit_total{datapath="t0"}`,
		"# TYPE ovsxdp_megaflows gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
