// Package svc is the ovs-svc HTTP control plane: a REST + Prometheus
// surface over a live simulation. Handlers never touch engine-owned state
// directly — every read and mutation is submitted to a core.Controller,
// which applies it on the simulation goroutine between events. That seam is
// what lets wall-clock HTTP clients observe and reconfigure a virtual-time
// datapath without tearing counters or perturbing determinism.
//
// The route table (RouteTable) is the canonical, lintable description of
// the API: Handler() refuses to build a mux that does not implement it
// exactly, and the CI lint test walks it end to end. Every response body
// embeds api.Envelope with schema api.SchemaAPI.
package svc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ovsxdp/internal/api"
	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/sim"
)

// Target is one datapath the server exposes, addressed by Name in URLs.
type Target struct {
	Name string
	DP   dpif.Dpif
}

// Route is one entry of the OpenAPI-ish route table.
type Route struct {
	Method  string
	Pattern string
	Summary string
}

// RouteTable is the canonical API surface. Handler() panics if a route has
// no registered handler or a handler has no route, so this table cannot
// drift from the implementation; the svc tests and the CI lint step walk
// it.
var RouteTable = []Route{
	{"GET", "/v1/datapaths", "list datapaths (name, type, ports, flows)"},
	{"GET", "/v1/datapaths/{name}/stats", "unified stats incl. conntrack and offload blocks"},
	{"GET", "/v1/pmd/perf", "per-thread performance counters (pmd-perf-show as JSON)"},
	{"GET", "/v1/flows", "paged megaflow dump (?datapath=&offset=&limit=)"},
	{"GET", "/v1/config", "effective other_config"},
	{"PUT", "/v1/config", "typed other_config mutation (all-or-nothing batch)"},
	{"POST", "/v1/faults", "schedule a fault window in virtual time"},
	{"GET", "/metrics", "Prometheus text exposition"},
}

// Server serves the control plane for a set of datapaths driven by one
// controller.
type Server struct {
	ctl       *core.Controller
	dps       []Target
	inj       *faultinject.Injector
	actuators map[string]func(bool)
}

// NewServer builds a server over the controller and its datapaths. The
// first target is the default for endpoints that take an optional
// ?datapath= selector.
func NewServer(ctl *core.Controller, targets ...Target) *Server {
	return &Server{ctl: ctl, dps: targets, actuators: make(map[string]func(bool))}
}

// SetInjector arms POST /v1/faults with a fault injector; without one the
// endpoint reports 400 on every request.
func (s *Server) SetInjector(inj *faultinject.Injector) { s.inj = inj }

// RegisterActuator attaches a side-effect hook to a (kind, target) fault:
// it runs with the new active state at both window edges, on the
// simulation goroutine. This is how offload-table-pressure reaches
// OffloadClamp without svc knowing any datapath internals.
func (s *Server) RegisterActuator(kind faultinject.Kind, target string, fn func(active bool)) {
	s.actuators[kind.String()+"|"+target] = fn
}

// target resolves the ?datapath= selector (empty means the first target).
func (s *Server) target(name string) (Target, bool) {
	if name == "" && len(s.dps) > 0 {
		return s.dps[0], true
	}
	for _, t := range s.dps {
		if t.Name == name {
			return t, true
		}
	}
	return Target{}, false
}

// do runs fn on the simulation goroutine with the engine paused.
func (s *Server) do(fn func()) { s.ctl.Do(fn) }

// errorBody is the uniform error response.
type errorBody struct {
	api.Envelope
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{
		Envelope: api.Envelope{Schema: api.SchemaAPI},
		Error:    fmt.Sprintf(format, args...),
	})
}

// Handler builds the http.Handler from RouteTable. It panics if the table
// and the handler set disagree — the API cannot silently drift from its
// documentation.
func (s *Server) Handler() http.Handler {
	handlers := s.handlers()
	mux := http.NewServeMux()
	for _, r := range RouteTable {
		key := r.Method + " " + r.Pattern
		h, ok := handlers[key]
		if !ok {
			panic(fmt.Sprintf("svc: route %q has no handler", key))
		}
		mux.HandleFunc(key, h)
		delete(handlers, key)
	}
	for key := range handlers {
		panic(fmt.Sprintf("svc: handler %q not in RouteTable", key))
	}
	return mux
}

// handlers maps "METHOD /pattern" to its implementation; Handler checks it
// one-to-one against RouteTable.
func (s *Server) handlers() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"GET /v1/datapaths":              s.handleDatapaths,
		"GET /v1/datapaths/{name}/stats": s.handleStats,
		"GET /v1/pmd/perf":               s.handlePerf,
		"GET /v1/flows":                  s.handleFlows,
		"GET /v1/config":                 s.handleGetConfig,
		"PUT /v1/config":                 s.handlePutConfig,
		"POST /v1/faults":                s.handleFaults,
		"GET /metrics":                   s.handleMetrics,
	}
}

// DatapathInfo is one row of GET /v1/datapaths.
type DatapathInfo struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Ports int    `json:"ports"`
	Flows int    `json:"flows"`
}

type datapathsBody struct {
	api.Envelope
	Datapaths []DatapathInfo `json:"datapaths"`
}

func (s *Server) handleDatapaths(w http.ResponseWriter, r *http.Request) {
	body := datapathsBody{Envelope: api.Envelope{Schema: api.SchemaAPI},
		Datapaths: []DatapathInfo{}}
	s.do(func() {
		for _, t := range s.dps {
			body.Datapaths = append(body.Datapaths, DatapathInfo{
				Name: t.Name, Type: t.DP.Type(),
				Ports: t.DP.PortCount(), Flows: t.DP.Stats().Flows,
			})
		}
	})
	writeJSON(w, http.StatusOK, body)
}

type statsBody struct {
	api.Envelope
	Name  string        `json:"name"`
	Stats api.StatsView `json:"stats"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	t, ok := s.target(name)
	if !ok || name == "" {
		writeError(w, http.StatusNotFound, "unknown datapath %q", name)
		return
	}
	body := statsBody{Envelope: api.Envelope{Schema: api.SchemaAPI}, Name: t.Name}
	s.do(func() {
		// Stats is cloned and the view constructor deep-copies again, so
		// the encoder (and the client) can never alias provider state.
		st := t.DP.Stats().Clone()
		body.Stats = api.NewStatsView(t.DP.Type(), st, t.DP.PerfStats(), t.DP.PortCount())
	})
	writeJSON(w, http.StatusOK, body)
}

type perfBody struct {
	api.Envelope
	Name string       `json:"name"`
	Perf api.PerfView `json:"perf"`
}

func (s *Server) handlePerf(w http.ResponseWriter, r *http.Request) {
	t, ok := s.target(r.URL.Query().Get("datapath"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datapath %q", r.URL.Query().Get("datapath"))
		return
	}
	body := perfBody{Envelope: api.Envelope{Schema: api.SchemaAPI}, Name: t.Name}
	s.do(func() { body.Perf = api.NewPerfView(t.DP.PerfStats()) })
	writeJSON(w, http.StatusOK, body)
}

type flowsBody struct {
	api.Envelope
	Name string `json:"name"`
	api.FlowPage
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, ok := s.target(q.Get("datapath"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datapath %q", q.Get("datapath"))
		return
	}
	offset, limit := 0, 0
	var err error
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
	}
	body := flowsBody{Envelope: api.Envelope{Schema: api.SchemaAPI}, Name: t.Name}
	s.do(func() {
		body.FlowPage = api.PageFlows(api.NewFlowViews(t.DP.FlowDump()), offset, limit)
	})
	writeJSON(w, http.StatusOK, body)
}

type configBody struct {
	api.Envelope
	Name string `json:"name"`
	api.ConfigView
}

func (s *Server) handleGetConfig(w http.ResponseWriter, r *http.Request) {
	t, ok := s.target(r.URL.Query().Get("datapath"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datapath %q", r.URL.Query().Get("datapath"))
		return
	}
	body := configBody{Envelope: api.Envelope{Schema: api.SchemaAPI}, Name: t.Name}
	s.do(func() { body.ConfigView = api.NewConfigView(t.DP.GetConfig()) })
	writeJSON(w, http.StatusOK, body)
}

// ConfigRequest is the PUT /v1/config body: a batch of other_config keys,
// validated and applied all-or-nothing through the same dpif schema the
// CLIs use — an unknown key or malformed value rejects the whole batch
// with the identical error text `ovsctl set` prints.
type ConfigRequest struct {
	Values map[string]string `json:"values"`
}

func (s *Server) handlePutConfig(w http.ResponseWriter, r *http.Request) {
	t, ok := s.target(r.URL.Query().Get("datapath"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datapath %q", r.URL.Query().Get("datapath"))
		return
	}
	var req ConfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, "need at least one key in values")
		return
	}
	var applyErr error
	body := configBody{Envelope: api.Envelope{Schema: api.SchemaAPI}, Name: t.Name}
	s.do(func() {
		applyErr = t.DP.SetConfig(req.Values)
		body.ConfigView = api.NewConfigView(t.DP.GetConfig())
	})
	if applyErr != nil {
		writeError(w, http.StatusBadRequest, "%v", applyErr)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// FaultRequest is the POST /v1/faults body. Kind names a faultinject.Kind
// ("upcall-failure", "offload-table-pressure", ...); AtUs/DurationUs are
// the window's start and length in virtual microseconds. A start in the
// virtual past is clamped to now.
type FaultRequest struct {
	Kind       string `json:"kind"`
	Target     string `json:"target"`
	AtUs       int64  `json:"at_us"`
	DurationUs int64  `json:"duration_us"`
}

type faultBody struct {
	api.Envelope
	FaultRequest
	// ArmedAtUs is the effective (possibly clamped) window start.
	ArmedAtUs int64 `json:"armed_at_us"`
}

// faultKinds maps wire names back to kinds, built from Kind.String so the
// two can never disagree.
var faultKinds = func() map[string]faultinject.Kind {
	m := make(map[string]faultinject.Kind)
	for k := faultinject.KindUmemExhaustion; k.String() != fmt.Sprintf("Kind(%d)", int(k)); k++ {
		m[k.String()] = k
	}
	return m
}()

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if s.inj == nil {
		writeError(w, http.StatusBadRequest, "fault injection not armed on this daemon")
		return
	}
	var req FaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	kind, ok := faultKinds[req.Kind]
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown fault kind %q", req.Kind)
		return
	}
	if req.DurationUs <= 0 {
		writeError(w, http.StatusBadRequest, "duration_us must be positive")
		return
	}
	body := faultBody{Envelope: api.Envelope{Schema: api.SchemaAPI}, FaultRequest: req}
	onSet := s.actuators[req.Kind+"|"+req.Target]
	s.do(func() {
		at := sim.Time(req.AtUs) * sim.Microsecond
		if now := s.ctl.Engine().Now(); at < now {
			at = now
		}
		body.ArmedAtUs = int64(at / sim.Microsecond)
		s.inj.Window(kind, req.Target, at, sim.Time(req.DurationUs)*sim.Microsecond, onSet)
	})
	writeJSON(w, http.StatusAccepted, body)
}
