package emc

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
)

func keyN(i int) flow.Key {
	f := flow.Fields{
		EthType: hdr.EtherTypeIPv4,
		IP4Src:  hdr.IP4(0x0a000000 + uint32(i)),
		IP4Dst:  hdr.MakeIP4(10, 0, 0, 2),
		IPProto: hdr.IPProtoUDP,
		TPSrc:   uint16(i), TPDst: 80,
	}
	return f.Pack()
}

func TestLookupMissThenHit(t *testing.T) {
	c := New[int](64, 0)
	k := keyN(1)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("empty cache must miss")
	}
	c.Insert(k, 42)
	v, ok := c.Lookup(k)
	if !ok || v != 42 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertSameKeyUpdates(t *testing.T) {
	c := New[int](64, 0)
	k := keyN(1)
	c.Insert(k, 1)
	c.Insert(k, 2)
	if v, _ := c.Lookup(k); v != 2 {
		t.Fatalf("update failed: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int](64, 0)
	k := keyN(1)
	c.Insert(k, 1)
	c.Invalidate(k)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("invalidated entry must miss")
	}
	// Invalidating a missing key is a no-op.
	c.Invalidate(keyN(99))
}

func TestFlush(t *testing.T) {
	c := New[int](64, 0)
	for i := 0; i < 10; i++ {
		c.Insert(keyN(i), i)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("len after flush = %d", c.Len())
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	c := New[int](8, 0) // 4 sets x 2 ways
	for i := 0; i < 100; i++ {
		c.Insert(keyN(i), i)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	if c.Evictions == 0 {
		t.Fatal("pressure must evict")
	}
}

func TestTwoWaysPerSetSurvive(t *testing.T) {
	// Two keys landing in the same set must coexist (2-way).
	c := New[int](2, 0) // a single set with 2 ways
	c.Insert(keyN(1), 1)
	c.Insert(keyN(2), 2)
	_, ok1 := c.Lookup(keyN(1))
	_, ok2 := c.Lookup(keyN(2))
	if !ok1 || !ok2 {
		t.Fatal("both ways of a set must be usable")
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New[int](1000, 0)
	if c.Capacity() < 1000 {
		t.Fatalf("capacity %d < requested 1000", c.Capacity())
	}
	if c.Capacity()%Ways != 0 {
		t.Fatal("capacity must be a multiple of the ways")
	}
}

func TestThousandFlowsMostlyFit(t *testing.T) {
	// The paper's 1,000-flow workload against the default 8192-entry EMC:
	// most flows should be cache-resident (conflict misses only).
	c := New[int](DefaultEntries, 0)
	for i := 0; i < 1000; i++ {
		c.Insert(keyN(i), i)
	}
	resident := 0
	for i := 0; i < 1000; i++ {
		if _, ok := c.Lookup(keyN(i)); ok {
			resident++
		}
	}
	if resident < 950 {
		t.Fatalf("only %d/1000 flows resident; expected nearly all", resident)
	}
}

// victimWay reports which way key's hash selects for eviction, mirroring
// Insert's replacement policy.
func victimWay(k flow.Key, basis uint32) int {
	return int((k.Hash(basis) >> 16) % Ways)
}

// Regression: eviction victims used to come from a single cache-global
// rotor, so every set evicted the same way in lockstep and an alternating
// insert pattern deterministically thrashed a hot entry. With hash-derived
// victims, churn keys that map to one way leave the other way's entry
// resident.
func TestEvictionHotEntrySurvivesChurn(t *testing.T) {
	const basis = 0
	c := New[int](Ways, basis) // single set: every key collides

	// Find two churn keys whose hash picks the same victim way, and a hot
	// key + filler to occupy the ways (free ways fill in order 0, 1).
	var churn []flow.Key
	w := -1
	for i := 100; i < 400 && len(churn) < 2; i++ {
		k := keyN(i)
		if w == -1 {
			w = victimWay(k, basis)
			churn = append(churn, k)
		} else if victimWay(k, basis) == w {
			churn = append(churn, k)
		}
	}
	hot := keyN(1)
	filler := keyN(2)
	if w == 0 {
		// Churn evicts way 0: put the filler there, the hot key in way 1.
		c.Insert(filler, 0)
		c.Insert(hot, 1)
	} else {
		c.Insert(hot, 1)
		c.Insert(filler, 0)
	}

	for i := 0; i < 64; i++ {
		c.Insert(churn[i%2], i)
	}
	if _, ok := c.Lookup(hot); !ok {
		t.Fatal("hot entry thrashed by churn keys that hash to the other way")
	}
}

// Eviction victims must spread across both ways rather than always hitting
// the same one: over many keys, each way should take a healthy share.
func TestEvictionVictimsSpreadAcrossWays(t *testing.T) {
	const basis = 0x9e37
	counts := [Ways]int{}
	for i := 0; i < 512; i++ {
		counts[victimWay(keyN(i), basis)]++
	}
	for way, n := range counts {
		if n < 512/(Ways*4) {
			t.Fatalf("way %d chosen only %d/512 times; victims not spread (counts %v)", way, n, counts)
		}
	}

	// And behaviorally: churning one full single-set cache with distinct
	// keys must, over time, evict occupants of both ways.
	c := New[int](Ways, basis)
	c.Insert(keyN(1000), 0) // way 0
	c.Insert(keyN(1001), 1) // way 1
	evictedWay := [Ways]bool{}
	for i := 0; i < 64; i++ {
		k := keyN(2000 + i)
		c.Insert(k, i)
		evictedWay[victimWay(k, basis)] = true
		if evictedWay[0] && evictedWay[1] {
			break
		}
	}
	if !evictedWay[0] || !evictedWay[1] {
		t.Fatalf("64 churn keys never evicted both ways: %v", evictedWay)
	}
	if c.Evictions == 0 {
		t.Fatal("churn must count evictions")
	}
}

func TestHitRate(t *testing.T) {
	c := New[int](64, 0)
	if c.HitRate() != 0 {
		t.Fatal("no lookups yet: rate 0")
	}
	k := keyN(1)
	c.Insert(k, 1)
	c.Lookup(k)
	c.Lookup(keyN(2))
	if r := c.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New[int](DefaultEntries, 0)
	k := keyN(7)
	c.Insert(k, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(k)
	}
}

// TestAliveCheckPurgesOnLookup: an entry whose value fails the registered
// alive check is purged at lookup time and reported as a miss, while live
// entries are untouched — OVS's emc_entry_alive discipline, which is what
// makes megaflow deletion O(1) for the EMC.
func TestAliveCheckPurgesOnLookup(t *testing.T) {
	c := New[*int](64, 0)
	c.SetAliveCheck(func(v *int) bool { return v != nil && *v != 0 })
	liveV, deadV := 7, 7
	k1, k2 := keyN(1), keyN(2)
	c.Insert(k1, &liveV)
	c.Insert(k2, &deadV)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}

	deadV = 0 // k2's megaflow dies
	if _, ok := c.Lookup(k2); ok {
		t.Fatal("dead entry must miss")
	}
	if c.StalePurged != 1 {
		t.Fatalf("StalePurged = %d, want 1", c.StalePurged)
	}
	if c.Len() != 1 {
		t.Fatalf("len after purge = %d, want 1", c.Len())
	}
	if v, ok := c.Lookup(k1); !ok || *v != 7 {
		t.Fatalf("live entry affected by unrelated purge: %v, %v", v, ok)
	}

	// The purged key is insertable again and hits with the new value.
	fresh := 9
	c.Insert(k2, &fresh)
	if v, ok := c.Lookup(k2); !ok || *v != 9 {
		t.Fatalf("reinsert after purge = %v, %v", v, ok)
	}
}

// TestAliveCheckReclaimsSlotOnInsert: inserting into a set whose ways hold
// a dead value reclaims that slot instead of evicting a live entry, and the
// live count stays consistent.
func TestAliveCheckReclaimsSlotOnInsert(t *testing.T) {
	c := New[*int](Ways, 0) // single set: every key collides
	c.SetAliveCheck(func(v *int) bool { return v != nil && *v != 0 })
	a, b := 1, 1
	c.Insert(keyN(1), &a)
	c.Insert(keyN(2), &b) // set is now full
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}

	a = 0 // first flow dies; its slot is reclaimable
	fresh := 5
	c.Insert(keyN(3), &fresh)
	if c.Evictions != 0 {
		t.Fatalf("insert evicted a live entry instead of reclaiming the dead slot (evictions=%d)", c.Evictions)
	}
	if c.StalePurged != 1 {
		t.Fatalf("StalePurged = %d, want 1", c.StalePurged)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2 (dead slot swapped for live)", c.Len())
	}
	if v, ok := c.Lookup(keyN(3)); !ok || *v != 5 {
		t.Fatalf("reclaimed-slot entry = %v, %v", v, ok)
	}
	if v, ok := c.Lookup(keyN(2)); !ok || *v != 1 {
		t.Fatalf("live entry lost: %v, %v", v, ok)
	}
}
