package emc

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
)

func keyN(i int) flow.Key {
	f := flow.Fields{
		EthType: hdr.EtherTypeIPv4,
		IP4Src:  hdr.IP4(0x0a000000 + uint32(i)),
		IP4Dst:  hdr.MakeIP4(10, 0, 0, 2),
		IPProto: hdr.IPProtoUDP,
		TPSrc:   uint16(i), TPDst: 80,
	}
	return f.Pack()
}

func TestLookupMissThenHit(t *testing.T) {
	c := New[int](64, 0)
	k := keyN(1)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("empty cache must miss")
	}
	c.Insert(k, 42)
	v, ok := c.Lookup(k)
	if !ok || v != 42 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertSameKeyUpdates(t *testing.T) {
	c := New[int](64, 0)
	k := keyN(1)
	c.Insert(k, 1)
	c.Insert(k, 2)
	if v, _ := c.Lookup(k); v != 2 {
		t.Fatalf("update failed: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int](64, 0)
	k := keyN(1)
	c.Insert(k, 1)
	c.Invalidate(k)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("invalidated entry must miss")
	}
	// Invalidating a missing key is a no-op.
	c.Invalidate(keyN(99))
}

func TestFlush(t *testing.T) {
	c := New[int](64, 0)
	for i := 0; i < 10; i++ {
		c.Insert(keyN(i), i)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("len after flush = %d", c.Len())
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	c := New[int](8, 0) // 4 sets x 2 ways
	for i := 0; i < 100; i++ {
		c.Insert(keyN(i), i)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	if c.Evictions == 0 {
		t.Fatal("pressure must evict")
	}
}

func TestTwoWaysPerSetSurvive(t *testing.T) {
	// Two keys landing in the same set must coexist (2-way).
	c := New[int](2, 0) // a single set with 2 ways
	c.Insert(keyN(1), 1)
	c.Insert(keyN(2), 2)
	_, ok1 := c.Lookup(keyN(1))
	_, ok2 := c.Lookup(keyN(2))
	if !ok1 || !ok2 {
		t.Fatal("both ways of a set must be usable")
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New[int](1000, 0)
	if c.Capacity() < 1000 {
		t.Fatalf("capacity %d < requested 1000", c.Capacity())
	}
	if c.Capacity()%Ways != 0 {
		t.Fatal("capacity must be a multiple of the ways")
	}
}

func TestThousandFlowsMostlyFit(t *testing.T) {
	// The paper's 1,000-flow workload against the default 8192-entry EMC:
	// most flows should be cache-resident (conflict misses only).
	c := New[int](DefaultEntries, 0)
	for i := 0; i < 1000; i++ {
		c.Insert(keyN(i), i)
	}
	resident := 0
	for i := 0; i < 1000; i++ {
		if _, ok := c.Lookup(keyN(i)); ok {
			resident++
		}
	}
	if resident < 950 {
		t.Fatalf("only %d/1000 flows resident; expected nearly all", resident)
	}
}

func TestHitRate(t *testing.T) {
	c := New[int](64, 0)
	if c.HitRate() != 0 {
		t.Fatal("no lookups yet: rate 0")
	}
	k := keyN(1)
	c.Insert(k, 1)
	c.Lookup(k)
	c.Lookup(keyN(2))
	if r := c.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New[int](DefaultEntries, 0)
	k := keyN(7)
	c.Insert(k, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(k)
	}
}
