// Package emc implements the exact-match cache, the first-level cache of the
// OVS userspace datapath. Each entry maps a complete flow key to the
// megaflow entry that handles it, so the common case costs one hash and one
// key comparison.
//
// The paper's history section (2.1) notes the Linux maintainers rejected an
// exact-match flow cache for the kernel datapath on design principle; the
// userspace datapath has had one all along, and the 1,000-flow columns of
// Figure 9 are specifically chosen to stress it ("a worst case scenario for
// the OVS datapath because it causes a high miss rate in the OVS caching
// layer"). The implementation follows OVS: a fixed-size, 2-way set
// associative table with pseudo-random replacement and no locks (one EMC per
// PMD thread).
package emc

import (
	"ovsxdp/internal/flow"
)

// Ways is the set associativity of the cache.
const Ways = 2

// DefaultEntries matches OVS's EM_FLOW_HASH_ENTRIES.
const DefaultEntries = 8192

// Entry is one cache slot.
type entry[V any] struct {
	key   flow.Key
	value V
	valid bool
}

// Cache is a fixed-size exact-match cache from flow.Key to V (typically the
// megaflow entry installed by the classifier).
type Cache[V any] struct {
	sets  [][Ways]entry[V]
	mask  uint32
	basis uint32
	count int // live entries (kept incrementally; Len is O(1))

	// alive, when set, is consulted on every lookup hit: an entry whose
	// value it rejects is purged and the lookup misses — OVS's
	// emc_entry_alive check. This is what makes megaflow deletion O(1)
	// for the EMC: a delete marks the megaflow dead and its cache entries
	// evaporate lazily, instead of a full-cache scan (or worse, a full
	// flush) per delete.
	alive func(V) bool

	// Stats.
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	// StalePurged counts entries lazily removed by the alive check.
	StalePurged uint64
}

// SetAliveCheck registers the liveness predicate applied to cached values
// on lookup and insert. nil disables the check (every entry is alive).
func (c *Cache[V]) SetAliveCheck(fn func(V) bool) { c.alive = fn }

// New returns a cache with the given number of entries, rounded up to a
// power of two, at least Ways.
func New[V any](entries int, hashBasis uint32) *Cache[V] {
	if entries < Ways {
		entries = Ways
	}
	n := 1
	for n < entries/Ways {
		n <<= 1
	}
	return &Cache[V]{sets: make([][Ways]entry[V], n), mask: uint32(n - 1), basis: hashBasis}
}

// Lookup returns the value cached for key, if any. An entry whose value
// fails the alive check is purged and reported as a miss.
func (c *Cache[V]) Lookup(key flow.Key) (V, bool) {
	set := &c.sets[key.Hash(c.basis)&c.mask]
	for i := range set {
		if set[i].valid && set[i].key == key {
			if c.alive != nil && !c.alive(set[i].value) {
				set[i] = entry[V]{}
				c.count--
				c.StalePurged++
				break
			}
			c.Hits++
			return set[i].value, true
		}
	}
	c.Misses++
	var zero V
	return zero, false
}

// Insert caches value for key, replacing an existing entry for the same key
// or evicting a pseudo-randomly chosen way.
func (c *Cache[V]) Insert(key flow.Key, value V) {
	set := &c.sets[key.Hash(c.basis)&c.mask]
	c.Inserts++
	// Same key: update in place.
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].value = value
			return
		}
	}
	// Free way — a slot holding a dead value counts as free (lazy purge).
	for i := range set {
		if !set[i].valid {
			set[i] = entry[V]{key: key, value: value, valid: true}
			c.count++
			return
		}
		if c.alive != nil && !c.alive(set[i].value) {
			set[i] = entry[V]{key: key, value: value, valid: true}
			c.StalePurged++
			return
		}
	}
	// Evict: the victim way comes from the key's own hash bits above the
	// set index, OVS's pseudo-random replacement. A cache-global rotor
	// would make every set evict the same way in lockstep, so two keys
	// alternating in one set deterministically thrash each other while the
	// other way's entry never ages out.
	victim := (key.Hash(c.basis) >> 16) % Ways
	set[victim] = entry[V]{key: key, value: value, valid: true}
	c.Evictions++
}

// Invalidate removes the entry for key if present.
func (c *Cache[V]) Invalidate(key flow.Key) {
	set := &c.sets[key.Hash(c.basis)&c.mask]
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i] = entry[V]{}
			c.count--
		}
	}
}

// Flush removes every entry (megaflow revalidation invalidating the cache).
func (c *Cache[V]) Flush() {
	for i := range c.sets {
		c.sets[i] = [Ways]entry[V]{}
	}
	c.count = 0
}

// Len returns the number of live entries. It is O(1): the datapath consults
// it per packet for the cold-flow cache-pressure heuristic.
func (c *Cache[V]) Len() int { return c.count }

// Capacity returns the total number of slots.
func (c *Cache[V]) Capacity() int { return len(c.sets) * Ways }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache[V]) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
