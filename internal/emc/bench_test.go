package emc

import (
	"testing"

	"ovsxdp/internal/flow"
)

// BenchmarkEMCLookup measures the wall-clock exact-match hit path: one
// hash, one set probe, one full-key compare.
func BenchmarkEMCLookup(b *testing.B) {
	c := New[int](DefaultEntries, 0)
	const flows = 4096
	keys := make([]flow.Key, flows)
	for i := range keys {
		keys[i] = keyN(i)
		c.Insert(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%flows])
	}
}

// BenchmarkEMCInsert measures the steady-state insert (update-in-place of
// a cached flow).
func BenchmarkEMCInsert(b *testing.B) {
	c := New[int](DefaultEntries, 0)
	const flows = 4096
	keys := make([]flow.Key, flows)
	for i := range keys {
		keys[i] = keyN(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(keys[i%flows], i)
	}
}
