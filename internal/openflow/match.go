package openflow

import (
	"encoding/binary"
	"fmt"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
)

// OXM class and field numbers (OpenFlow basic class, plus the Nicira
// extensions OVS uses for conntrack and tunnel endpoint fields).
const (
	oxmClassBasic  = 0x8000
	oxmClassNicira = 0x0001 // NXM_1
)

// OXM basic fields.
const (
	oxmInPort   = 0
	oxmEthDst   = 3
	oxmEthSrc   = 4
	oxmEthType  = 5
	oxmVlanVID  = 6
	oxmIPProto  = 10
	oxmIPv4Src  = 11
	oxmIPv4Dst  = 12
	oxmTCPSrc   = 13
	oxmTCPDst   = 14
	oxmUDPSrc   = 15
	oxmUDPDst   = 16
	oxmTunnelID = 38
)

// Nicira extension fields.
const (
	nxmCtState    = 105
	nxmCtZone     = 106
	nxmCtMark     = 107
	nxmTunIPv4Src = 31
	nxmTunIPv4Dst = 32
	nxmRecircID   = 108
)

// EncodeMatch serializes an ofproto match as an OXM match structure
// (ofp_match: type=1, length, TLVs, padded to 8).
func EncodeMatch(m ofproto.Match) []byte {
	f := m.Key.Unpack()
	var tlvs []byte
	add := func(class uint16, field uint8, value []byte, mask []byte) {
		hasMask := uint8(0)
		if mask != nil {
			hasMask = 1
		}
		tlv := make([]byte, 4+len(value)+len(mask))
		binary.BigEndian.PutUint16(tlv[0:2], class)
		tlv[2] = field<<1 | hasMask
		tlv[3] = uint8(len(value) + len(mask))
		copy(tlv[4:], value)
		copy(tlv[4+len(value):], mask)
		tlvs = append(tlvs, tlv...)
	}
	u16 := func(v uint16) []byte { b := make([]byte, 2); binary.BigEndian.PutUint16(b, v); return b }
	u32 := func(v uint32) []byte { b := make([]byte, 4); binary.BigEndian.PutUint32(b, v); return b }
	u64 := func(v uint64) []byte { b := make([]byte, 8); binary.BigEndian.PutUint64(b, v); return b }

	// Probe the mask by checking whether each field's bits survive it.
	has := func(build func(*flow.MaskBuilder) *flow.MaskBuilder) bool {
		probe := build(flow.NewMaskBuilder()).Build()
		return m.Mask.Covers(probe)
	}

	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.InPort() }) {
		add(oxmClassBasic, oxmInPort, u32(f.InPort), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.RecircID() }) && f.RecircID != 0 {
		add(oxmClassNicira, nxmRecircID, u32(f.RecircID), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.EthDst() }) {
		add(oxmClassBasic, oxmEthDst, f.EthDst[:], nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.EthSrc() }) {
		add(oxmClassBasic, oxmEthSrc, f.EthSrc[:], nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.EthType() }) {
		add(oxmClassBasic, oxmEthType, u16(uint16(f.EthType)), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.VLAN() }) {
		add(oxmClassBasic, oxmVlanVID, u16(f.VLANTCI), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.IPProto() }) {
		add(oxmClassBasic, oxmIPProto, []byte{uint8(f.IPProto)}, nil)
	}
	// IPv4 prefixes: emit with mask when partially masked.
	srcMaskBits := ipv4MaskBits(m.Mask, true)
	if srcMaskBits == 32 {
		add(oxmClassBasic, oxmIPv4Src, u32(uint32(f.IP4Src)), nil)
	} else if srcMaskBits > 0 {
		add(oxmClassBasic, oxmIPv4Src, u32(uint32(f.IP4Src)), u32(prefix32(srcMaskBits)))
	}
	dstMaskBits := ipv4MaskBits(m.Mask, false)
	if dstMaskBits == 32 {
		add(oxmClassBasic, oxmIPv4Dst, u32(uint32(f.IP4Dst)), nil)
	} else if dstMaskBits > 0 {
		add(oxmClassBasic, oxmIPv4Dst, u32(uint32(f.IP4Dst)), u32(prefix32(dstMaskBits)))
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TPSrc() }) {
		if f.IPProto == hdr.IPProtoUDP {
			add(oxmClassBasic, oxmUDPSrc, u16(f.TPSrc), nil)
		} else {
			add(oxmClassBasic, oxmTCPSrc, u16(f.TPSrc), nil)
		}
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TPDst() }) {
		if f.IPProto == hdr.IPProtoUDP {
			add(oxmClassBasic, oxmUDPDst, u16(f.TPDst), nil)
		} else {
			add(oxmClassBasic, oxmTCPDst, u16(f.TPDst), nil)
		}
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TunVNI() }) {
		add(oxmClassBasic, oxmTunnelID, u64(uint64(f.TunVNI)), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TunSrc() }) {
		add(oxmClassNicira, nxmTunIPv4Src, u32(uint32(f.TunSrc)), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.TunDst() }) {
		add(oxmClassNicira, nxmTunIPv4Dst, u32(uint32(f.TunDst)), nil)
	}
	// ct_state is matched with an explicit bit mask.
	ctBits := ctStateMaskBits(m.Mask)
	if ctBits != 0 {
		add(oxmClassNicira, nxmCtState, []byte{f.CtState}, []byte{ctBits})
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.CtZone() }) {
		add(oxmClassNicira, nxmCtZone, u16(f.CtZone), nil)
	}
	if has(func(b *flow.MaskBuilder) *flow.MaskBuilder { return b.CtMark() }) {
		add(oxmClassNicira, nxmCtMark, u32(f.CtMark), nil)
	}

	// ofp_match header: type=1 (OXM), length includes the 4-byte header
	// but not the padding.
	length := 4 + len(tlvs)
	out := make([]byte, pad8(length))
	binary.BigEndian.PutUint16(out[0:2], 1)
	binary.BigEndian.PutUint16(out[2:4], uint16(length))
	copy(out[4:], tlvs)
	return out
}

// DecodeMatch parses an OXM match structure, returning the ofproto match
// and the total bytes consumed (including padding).
func DecodeMatch(b []byte) (ofproto.Match, int, error) {
	var zero ofproto.Match
	if len(b) < 4 {
		return zero, 0, fmt.Errorf("openflow: match too short")
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 {
		return zero, 0, fmt.Errorf("openflow: unsupported match type")
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < 4 || pad8(length) > len(b) {
		return zero, 0, fmt.Errorf("openflow: match length %d overruns buffer", length)
	}
	tlvs := b[4:length]

	var f flow.Fields
	mb := flow.NewMaskBuilder()
	var extraMask flow.Mask

	for len(tlvs) > 0 {
		if len(tlvs) < 4 {
			return zero, 0, fmt.Errorf("openflow: truncated OXM TLV")
		}
		class := binary.BigEndian.Uint16(tlvs[0:2])
		field := tlvs[2] >> 1
		hasMask := tlvs[2]&1 == 1
		plen := int(tlvs[3])
		if len(tlvs) < 4+plen {
			return zero, 0, fmt.Errorf("openflow: OXM payload overruns TLV")
		}
		payload := tlvs[4 : 4+plen]
		vlen := plen
		if hasMask {
			vlen = plen / 2
		}
		val := payload[:vlen]
		var mask []byte
		if hasMask {
			mask = payload[vlen:]
		}

		switch {
		case class == oxmClassBasic:
			switch field {
			case oxmInPort:
				f.InPort = binary.BigEndian.Uint32(val)
				mb.InPort()
			case oxmEthDst:
				copy(f.EthDst[:], val)
				mb.EthDst()
			case oxmEthSrc:
				copy(f.EthSrc[:], val)
				mb.EthSrc()
			case oxmEthType:
				f.EthType = hdr.EtherType(binary.BigEndian.Uint16(val))
				mb.EthType()
			case oxmVlanVID:
				f.VLANTCI = binary.BigEndian.Uint16(val)
				mb.VLAN()
			case oxmIPProto:
				f.IPProto = hdr.IPProto(val[0])
				mb.IPProto()
			case oxmIPv4Src:
				f.IP4Src = hdr.IP4(binary.BigEndian.Uint32(val))
				mb.IP4Src(maskBits(mask))
			case oxmIPv4Dst:
				f.IP4Dst = hdr.IP4(binary.BigEndian.Uint32(val))
				mb.IP4Dst(maskBits(mask))
			case oxmTCPSrc, oxmUDPSrc:
				f.TPSrc = binary.BigEndian.Uint16(val)
				mb.TPSrc()
			case oxmTCPDst, oxmUDPDst:
				f.TPDst = binary.BigEndian.Uint16(val)
				mb.TPDst()
			case oxmTunnelID:
				f.TunVNI = uint32(binary.BigEndian.Uint64(val))
				mb.TunVNI()
			default:
				return zero, 0, fmt.Errorf("openflow: unsupported OXM basic field %d", field)
			}
		case class == oxmClassNicira:
			switch field {
			case nxmCtState:
				f.CtState = val[0]
				bits := uint8(0xff)
				if mask != nil {
					bits = mask[0]
				}
				extraMask = extraMask.Union(flow.NewMaskBuilder().CtState(bits).Build())
			case nxmCtZone:
				f.CtZone = binary.BigEndian.Uint16(val)
				mb.CtZone()
			case nxmCtMark:
				f.CtMark = binary.BigEndian.Uint32(val)
				mb.CtMark()
			case nxmTunIPv4Src:
				f.TunSrc = hdr.IP4(binary.BigEndian.Uint32(val))
				mb.TunSrc()
			case nxmTunIPv4Dst:
				f.TunDst = hdr.IP4(binary.BigEndian.Uint32(val))
				mb.TunDst()
			case nxmRecircID:
				f.RecircID = binary.BigEndian.Uint32(val)
				mb.RecircID()
			default:
				return zero, 0, fmt.Errorf("openflow: unsupported NXM field %d", field)
			}
		default:
			return zero, 0, fmt.Errorf("openflow: unsupported OXM class %#x", class)
		}
		tlvs = tlvs[4+plen:]
	}
	mask := mb.Build().Union(extraMask)
	return ofproto.NewMatch(f, mask), pad8(length), nil
}

// ipv4MaskBits inspects the packed mask's IPv4 src/dst bits and returns the
// prefix length, assuming contiguous prefixes (the only form the builder
// produces).
func ipv4MaskBits(m flow.Mask, src bool) int {
	for bits := 32; bits >= 1; bits-- {
		var probe flow.Mask
		if src {
			probe = flow.NewMaskBuilder().IP4Src(bits).Build()
		} else {
			probe = flow.NewMaskBuilder().IP4Dst(bits).Build()
		}
		if m.Covers(probe) {
			return bits
		}
	}
	return 0
}

// ctStateMaskBits extracts the ct_state bits the mask matches.
func ctStateMaskBits(m flow.Mask) uint8 {
	var bits uint8
	for b := 0; b < 8; b++ {
		probe := flow.NewMaskBuilder().CtState(1 << b).Build()
		if m.Covers(probe) {
			bits |= 1 << b
		}
	}
	return bits
}

func maskBits(mask []byte) int {
	if mask == nil {
		return 32
	}
	v := binary.BigEndian.Uint32(mask)
	n := 0
	for v&0x80000000 != 0 {
		n++
		v <<= 1
	}
	return n
}

func prefix32(n int) uint32 {
	if n <= 0 {
		return 0
	}
	if n >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - n)
}
