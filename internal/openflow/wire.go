// Package openflow implements the OpenFlow 1.3 wire subset the NSX agent
// uses to program OVS (Section 4): HELLO/ECHO keepalives, FLOW_MOD with
// OXM matches, APPLY_ACTIONS/GOTO_TABLE/METER instructions, Nicira-style
// experimenter actions for conntrack and tunnel operations, and multipart
// flow-stats.
//
// Encoding follows the OpenFlow 1.3 framing (8-byte header, OXM TLVs,
// 8-byte-aligned structures). Matches and actions convert to and from the
// internal ofproto representation, so a controller connection drives the
// same pipeline the datapath translates against.
package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is OpenFlow 1.3.
const Version = 0x04

// MsgType is the OpenFlow message type.
type MsgType uint8

// Message types (OpenFlow 1.3 numbering).
const (
	TypeHello          MsgType = 0
	TypeError          MsgType = 1
	TypeEchoRequest    MsgType = 2
	TypeEchoReply      MsgType = 3
	TypeFeaturesReq    MsgType = 5
	TypeFeaturesReply  MsgType = 6
	TypeFlowMod        MsgType = 14
	TypeMultipartReq   MsgType = 18
	TypeMultipartReply MsgType = 19
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeError:
		return "error"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFeaturesReq:
		return "features-request"
	case TypeFeaturesReply:
		return "features-reply"
	case TypeFlowMod:
		return "flow-mod"
	case TypeMultipartReq:
		return "multipart-request"
	case TypeMultipartReply:
		return "multipart-reply"
	default:
		return fmt.Sprintf("type-%d", uint8(t))
	}
}

// HeaderSize is the fixed OpenFlow header size.
const HeaderSize = 8

// MaxMessageSize bounds a single message (sanity limit).
const MaxMessageSize = 1 << 20

// Message is one framed OpenFlow message.
type Message struct {
	Type MsgType
	Xid  uint32
	Body []byte
}

// Encode frames the message.
func (m Message) Encode() []byte {
	out := make([]byte, HeaderSize+len(m.Body))
	out[0] = Version
	out[1] = uint8(m.Type)
	binary.BigEndian.PutUint16(out[2:4], uint16(len(out)))
	binary.BigEndian.PutUint32(out[4:8], m.Xid)
	copy(out[HeaderSize:], m.Body)
	return out
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if hdr[0] != Version {
		return Message{}, fmt.Errorf("openflow: unsupported version %#x", hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < HeaderSize || length > MaxMessageSize {
		return Message{}, fmt.Errorf("openflow: bad message length %d", length)
	}
	m := Message{
		Type: MsgType(hdr[1]),
		Xid:  binary.BigEndian.Uint32(hdr[4:8]),
		Body: make([]byte, length-HeaderSize),
	}
	if _, err := io.ReadFull(r, m.Body); err != nil {
		return Message{}, err
	}
	return m, nil
}

// WriteMessage writes one framed message to w.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(m.Encode())
	return err
}

// Hello builds a HELLO.
func Hello(xid uint32) Message { return Message{Type: TypeHello, Xid: xid} }

// EchoRequest builds an ECHO_REQUEST.
func EchoRequest(xid uint32, payload []byte) Message {
	return Message{Type: TypeEchoRequest, Xid: xid, Body: payload}
}

// EchoReply answers an echo.
func EchoReply(req Message) Message {
	return Message{Type: TypeEchoReply, Xid: req.Xid, Body: req.Body}
}

// ErrorMsg builds an ERROR with type/code and the offending data.
func ErrorMsg(xid uint32, errType, code uint16, data []byte) Message {
	body := make([]byte, 4+len(data))
	binary.BigEndian.PutUint16(body[0:2], errType)
	binary.BigEndian.PutUint16(body[2:4], code)
	copy(body[4:], data)
	return Message{Type: TypeError, Xid: xid, Body: body}
}

// FeaturesReply carries the datapath id.
func FeaturesReply(xid uint32, datapathID uint64) Message {
	body := make([]byte, 24)
	binary.BigEndian.PutUint64(body[0:8], datapathID)
	binary.BigEndian.PutUint32(body[8:12], 0) // n_buffers
	body[12] = 254                            // n_tables
	return Message{Type: TypeFeaturesReply, Xid: xid, Body: body}
}

// ParseFeaturesReply extracts the datapath id.
func ParseFeaturesReply(m Message) (uint64, error) {
	if m.Type != TypeFeaturesReply || len(m.Body) < 8 {
		return 0, fmt.Errorf("openflow: not a features reply")
	}
	return binary.BigEndian.Uint64(m.Body[0:8]), nil
}

// pad8 returns n rounded up to a multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }
