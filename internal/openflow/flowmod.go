package openflow

import (
	"encoding/binary"
	"fmt"

	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/tunnel"
)

// FlowMod commands.
const (
	FlowModAdd    = 0
	FlowModDelete = 3
)

// Instruction types (OpenFlow 1.3).
const (
	instrGotoTable    = 1
	instrApplyActions = 4
	instrMeter        = 6
)

// Action types.
const (
	actOutput   = 0
	actPushVLAN = 17
	actPopVLAN  = 18
	actDecTTL   = 24
	actSetField = 25
	actExp      = 0xffff
)

// Nicira experimenter id and subtypes.
const (
	niciraExperimenter = 0x00002320
	nxastCT            = 35
	nxastTunnelKind    = 36
	nxastTunnelPop     = 37
	nxastDrop          = 38
)

// FlowMod is a decoded flow modification.
type FlowMod struct {
	Command  uint8
	TableID  uint8
	Priority int
	Cookie   uint64
	Match    ofproto.Match
	Actions  []ofproto.Action
}

// EncodeFlowMod serializes a flow mod message body.
func EncodeFlowMod(fm FlowMod) Message {
	// Fixed part: cookie(8) cookie_mask(8) table(1) command(1)
	// idle(2) hard(2) priority(2) buffer(4) out_port(4) out_group(4)
	// flags(2) pad(2) = 40 bytes, then match, then instructions.
	fixed := make([]byte, 40)
	binary.BigEndian.PutUint64(fixed[0:8], fm.Cookie)
	fixed[16] = fm.TableID
	fixed[17] = fm.Command
	binary.BigEndian.PutUint16(fixed[22:24], uint16(fm.Priority))
	match := EncodeMatch(fm.Match)
	instrs := encodeInstructions(fm.Actions)
	body := append(append(fixed, match...), instrs...)
	return Message{Type: TypeFlowMod, Body: body}
}

// DecodeFlowMod parses a flow mod message.
func DecodeFlowMod(m Message) (FlowMod, error) {
	var fm FlowMod
	if m.Type != TypeFlowMod {
		return fm, fmt.Errorf("openflow: not a flow mod")
	}
	if len(m.Body) < 40 {
		return fm, fmt.Errorf("openflow: flow mod too short")
	}
	fm.Cookie = binary.BigEndian.Uint64(m.Body[0:8])
	fm.TableID = m.Body[16]
	fm.Command = m.Body[17]
	fm.Priority = int(binary.BigEndian.Uint16(m.Body[22:24]))
	match, n, err := DecodeMatch(m.Body[40:])
	if err != nil {
		return fm, err
	}
	fm.Match = match
	actions, err := decodeInstructions(m.Body[40+n:])
	if err != nil {
		return fm, err
	}
	fm.Actions = actions
	return fm, nil
}

// encodeInstructions compiles ofproto actions into OpenFlow instructions:
// apply-actions for the action list, plus goto-table / meter instructions.
func encodeInstructions(actions []ofproto.Action) []byte {
	var applied []byte
	var tail []byte // goto/meter instructions

	u16 := func(b []byte, off int, v uint16) { binary.BigEndian.PutUint16(b[off:], v) }
	u32 := func(b []byte, off int, v uint32) { binary.BigEndian.PutUint32(b[off:], v) }

	addAction := func(b []byte) { applied = append(applied, b...) }

	emitSetField := func(class uint16, field uint8, value []byte) {
		tlvLen := 4 + len(value)
		total := pad8(4 + tlvLen)
		b := make([]byte, total)
		u16(b, 0, actSetField)
		u16(b, 2, uint16(total))
		u16(b, 4, class)
		b[6] = field << 1
		b[7] = uint8(len(value))
		copy(b[8:], value)
		addAction(b)
	}

	for _, a := range actions {
		switch a.Type {
		case ofproto.ActionOutput:
			b := make([]byte, 16)
			u16(b, 0, actOutput)
			u16(b, 2, 16)
			u32(b, 4, a.Port)
			u16(b, 8, 0xffff) // max_len
			addAction(b)
		case ofproto.ActionPushVLAN:
			b := make([]byte, 8)
			u16(b, 0, actPushVLAN)
			u16(b, 2, 8)
			u16(b, 4, uint16(hdr.EtherTypeVLAN))
			addAction(b)
			// The VID itself travels as a set-field.
			vid := make([]byte, 2)
			binary.BigEndian.PutUint16(vid, a.VLAN|uint16(a.VLANPrio)<<13)
			emitSetField(oxmClassBasic, oxmVlanVID, vid)
		case ofproto.ActionPopVLAN:
			b := make([]byte, 8)
			u16(b, 0, actPopVLAN)
			u16(b, 2, 8)
			addAction(b)
		case ofproto.ActionDecTTL:
			b := make([]byte, 8)
			u16(b, 0, actDecTTL)
			u16(b, 2, 8)
			addAction(b)
		case ofproto.ActionSetEthSrc:
			emitSetField(oxmClassBasic, oxmEthSrc, a.MAC[:])
		case ofproto.ActionSetEthDst:
			emitSetField(oxmClassBasic, oxmEthDst, a.MAC[:])
		case ofproto.ActionSetTunnel:
			// tun_id + endpoints as set-fields, kind via experimenter.
			vni := make([]byte, 8)
			binary.BigEndian.PutUint64(vni, uint64(a.Tunnel.VNI))
			emitSetField(oxmClassBasic, oxmTunnelID, vni)
			src := make([]byte, 4)
			binary.BigEndian.PutUint32(src, uint32(a.Tunnel.LocalIP))
			emitSetField(oxmClassNicira, nxmTunIPv4Src, src)
			dst := make([]byte, 4)
			binary.BigEndian.PutUint32(dst, uint32(a.Tunnel.RemoteIP))
			emitSetField(oxmClassNicira, nxmTunIPv4Dst, dst)
			b := make([]byte, 16)
			u16(b, 0, actExp)
			u16(b, 2, 16)
			u32(b, 4, niciraExperimenter)
			u16(b, 8, nxastTunnelKind)
			b[10] = byte(a.Tunnel.Kind)
			addAction(b)
		case ofproto.ActionTunnelPop:
			b := make([]byte, 16)
			u16(b, 0, actExp)
			u16(b, 2, 16)
			u32(b, 4, niciraExperimenter)
			u16(b, 8, nxastTunnelPop)
			u32(b, 12, a.Port)
			addAction(b)
		case ofproto.ActionCT:
			// NXAST_CT: flags, zone, recirc table, NAT.
			b := make([]byte, 32)
			u16(b, 0, actExp)
			u16(b, 2, 32)
			u32(b, 4, niciraExperimenter)
			u16(b, 8, nxastCT)
			flags := uint16(0)
			if a.Commit {
				flags |= 1
			}
			u16(b, 10, flags)
			u16(b, 12, a.Zone)
			b[14] = a.Table
			b[15] = byte(a.NAT.Kind)
			u32(b, 16, uint32(a.NAT.Addr))
			u16(b, 20, a.NAT.Port)
			u32(b, 24, a.CtMark)
			addAction(b)
		case ofproto.ActionDrop:
			b := make([]byte, 16)
			u16(b, 0, actExp)
			u16(b, 2, 16)
			u32(b, 4, niciraExperimenter)
			u16(b, 8, nxastDrop)
			addAction(b)
		case ofproto.ActionGoto:
			b := make([]byte, 8)
			u16(b, 0, instrGotoTable)
			u16(b, 2, 8)
			b[4] = a.Table
			tail = append(tail, b...)
		case ofproto.ActionMeter:
			b := make([]byte, 8)
			u16(b, 0, instrMeter)
			u16(b, 2, 8)
			u32(b, 4, a.MeterID)
			tail = append(tail, b...)
		case ofproto.ActionSetCtMark:
			// Carried inside the CT action encoding above.
		}
	}

	var out []byte
	if len(applied) > 0 {
		hdrB := make([]byte, 8)
		binary.BigEndian.PutUint16(hdrB[0:2], instrApplyActions)
		binary.BigEndian.PutUint16(hdrB[2:4], uint16(8+len(applied)))
		out = append(out, hdrB...)
		out = append(out, applied...)
	}
	return append(out, tail...)
}

// decodeInstructions parses instructions back to ofproto actions, keeping
// the order: applied actions first, then goto/meter.
func decodeInstructions(b []byte) ([]ofproto.Action, error) {
	var actions []ofproto.Action
	var gotos []ofproto.Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("openflow: truncated instruction")
		}
		it := binary.BigEndian.Uint16(b[0:2])
		il := int(binary.BigEndian.Uint16(b[2:4]))
		if il < 4 || il > len(b) {
			return nil, fmt.Errorf("openflow: bad instruction length %d", il)
		}
		body := b[4:il]
		switch it {
		case instrGotoTable:
			gotos = append(gotos, ofproto.GotoTable(body[0]))
		case instrMeter:
			gotos = append(gotos, ofproto.Meter(binary.BigEndian.Uint32(body[0:4])))
		case instrApplyActions:
			acts, err := decodeActions(body[4:]) // skip 4-byte pad
			if err != nil {
				return nil, err
			}
			actions = append(actions, acts...)
		default:
			return nil, fmt.Errorf("openflow: unsupported instruction %d", it)
		}
		b = b[il:]
	}
	// Meters apply before output in our model; preserve goto at the end.
	return reorderMeters(actions, gotos), nil
}

// reorderMeters puts meter actions before the action list and gotos after,
// matching how the pipeline interprets them.
func reorderMeters(actions, tail []ofproto.Action) []ofproto.Action {
	var meters, gotos []ofproto.Action
	for _, a := range tail {
		if a.Type == ofproto.ActionMeter {
			meters = append(meters, a)
		} else {
			gotos = append(gotos, a)
		}
	}
	out := append(meters, actions...)
	return append(out, gotos...)
}

// decodeActions parses an action list. OpenFlow pads apply-actions bodies;
// our encoder emits no leading pad, so the caller skips the 4 instruction
// pad bytes before calling.
func decodeActions(b []byte) ([]ofproto.Action, error) {
	var out []ofproto.Action
	var pendingTunnel *tunnel.Config
	flushTunnel := func() {
		if pendingTunnel != nil {
			out = append(out, ofproto.SetTunnel(*pendingTunnel))
			pendingTunnel = nil
		}
	}
	tunnelCfg := func() *tunnel.Config {
		if pendingTunnel == nil {
			pendingTunnel = &tunnel.Config{}
		}
		return pendingTunnel
	}
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("openflow: truncated action")
		}
		at := binary.BigEndian.Uint16(b[0:2])
		al := int(binary.BigEndian.Uint16(b[2:4]))
		if al < 4 || al > len(b) {
			return nil, fmt.Errorf("openflow: bad action length %d", al)
		}
		body := b[4:al]
		switch at {
		case actOutput:
			flushTunnel()
			out = append(out, ofproto.Output(binary.BigEndian.Uint32(body[0:4])))
		case actPushVLAN:
			// The VID arrives in the following set-field; emit a
			// placeholder updated there.
			out = append(out, ofproto.PushVLAN(0, 0))
		case actPopVLAN:
			out = append(out, ofproto.PopVLAN())
		case actDecTTL:
			out = append(out, ofproto.DecTTL())
		case actSetField:
			class := binary.BigEndian.Uint16(body[0:2])
			field := body[2] >> 1
			vlen := int(body[3])
			if len(body) < 4+vlen {
				return nil, fmt.Errorf("openflow: set-field value overrun")
			}
			val := body[4 : 4+vlen]
			switch {
			case class == oxmClassBasic && field == oxmEthSrc:
				var mac hdr.MAC
				copy(mac[:], val)
				out = append(out, ofproto.SetEthSrc(mac))
			case class == oxmClassBasic && field == oxmEthDst:
				var mac hdr.MAC
				copy(mac[:], val)
				out = append(out, ofproto.SetEthDst(mac))
			case class == oxmClassBasic && field == oxmVlanVID:
				tci := binary.BigEndian.Uint16(val)
				// Update the preceding push_vlan placeholder.
				for i := len(out) - 1; i >= 0; i-- {
					if out[i].Type == ofproto.ActionPushVLAN {
						out[i].VLAN = tci & 0x0fff
						out[i].VLANPrio = uint8(tci >> 13)
						break
					}
				}
			case class == oxmClassBasic && field == oxmTunnelID:
				tunnelCfg().VNI = uint32(binary.BigEndian.Uint64(val))
			case class == oxmClassNicira && field == nxmTunIPv4Src:
				tunnelCfg().LocalIP = hdr.IP4(binary.BigEndian.Uint32(val))
			case class == oxmClassNicira && field == nxmTunIPv4Dst:
				tunnelCfg().RemoteIP = hdr.IP4(binary.BigEndian.Uint32(val))
			default:
				return nil, fmt.Errorf("openflow: unsupported set-field %d/%d", class, field)
			}
		case actExp:
			expID := binary.BigEndian.Uint32(body[0:4])
			if expID != niciraExperimenter {
				return nil, fmt.Errorf("openflow: unknown experimenter %#x", expID)
			}
			sub := binary.BigEndian.Uint16(body[4:6])
			switch sub {
			case nxastTunnelKind:
				tunnelCfg().Kind = tunnel.Kind(body[6])
			case nxastTunnelPop:
				out = append(out, ofproto.TunnelPop(binary.BigEndian.Uint32(body[8:12])))
			case nxastCT:
				flags := binary.BigEndian.Uint16(body[6:8])
				a := ofproto.Action{
					Type:   ofproto.ActionCT,
					Commit: flags&1 != 0,
					Zone:   binary.BigEndian.Uint16(body[8:10]),
					Table:  body[10],
					NAT: conntrack.NAT{
						Kind: conntrack.NATKind(body[11]),
						Addr: hdr.IP4(binary.BigEndian.Uint32(body[12:16])),
						Port: binary.BigEndian.Uint16(body[16:18]),
					},
					CtMark: binary.BigEndian.Uint32(body[20:24]),
				}
				out = append(out, a)
			case nxastDrop:
				out = append(out, ofproto.Drop())
			default:
				return nil, fmt.Errorf("openflow: unknown Nicira subtype %d", sub)
			}
		default:
			return nil, fmt.Errorf("openflow: unsupported action %d", at)
		}
		b = b[al:]
	}
	flushTunnel()
	return out, nil
}
