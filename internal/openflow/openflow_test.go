package openflow

import (
	"bytes"
	"net"
	"testing"

	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/tunnel"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Hello(1),
		EchoRequest(2, []byte("ping")),
		ErrorMsg(3, 1, 9, []byte{0xde, 0xad}),
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Xid != want.Xid || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	raw := Hello(1).Encode()
	raw[0] = 0x01
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version must fail")
	}
}

func TestEchoReplyEchoesPayload(t *testing.T) {
	req := EchoRequest(7, []byte("abc"))
	rep := EchoReply(req)
	if rep.Type != TypeEchoReply || rep.Xid != 7 || !bytes.Equal(rep.Body, []byte("abc")) {
		t.Fatalf("echo reply = %+v", rep)
	}
}

func TestFeaturesReply(t *testing.T) {
	m := FeaturesReply(3, 0xabcdef)
	id, err := ParseFeaturesReply(m)
	if err != nil || id != 0xabcdef {
		t.Fatalf("features = %#x, %v", id, err)
	}
}

func matchForTest() ofproto.Match {
	mask := flow.NewMaskBuilder().InPort().EthType().IPProto().
		IP4Dst(24).TPDst().CtState(0x05).CtZone().TunVNI().Build()
	return ofproto.NewMatch(flow.Fields{
		InPort: 3, EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP,
		IP4Dst: hdr.MakeIP4(10, 1, 2, 0), TPDst: 443,
		CtState: 0x05, CtZone: 9, TunVNI: 777,
	}, mask)
}

func TestMatchRoundTrip(t *testing.T) {
	want := matchForTest()
	raw := EncodeMatch(want)
	if len(raw)%8 != 0 {
		t.Fatalf("match not 8-aligned: %d", len(raw))
	}
	got, n, err := DecodeMatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d", n, len(raw))
	}
	if got.Key != want.Key {
		t.Fatalf("keys differ:\n got  %s\n want %s", got.Key, want.Key)
	}
	if got.Mask != want.Mask {
		t.Fatal("masks differ after round trip")
	}
}

func TestMatchSemantics(t *testing.T) {
	raw := EncodeMatch(matchForTest())
	m, _, err := DecodeMatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	// A packet key in the right /24 with the right port matches.
	k := (&flow.Fields{InPort: 3, EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP,
		IP4Src: hdr.MakeIP4(9, 9, 9, 9), IP4Dst: hdr.MakeIP4(10, 1, 2, 55), TPDst: 443,
		CtState: 0x05, CtZone: 9, TunVNI: 777, TPSrc: 5555}).Pack()
	if !m.Matches(k) {
		t.Fatal("decoded match must accept an in-prefix key")
	}
	k2 := (&flow.Fields{InPort: 3, EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP,
		IP4Dst: hdr.MakeIP4(10, 1, 3, 55), TPDst: 443, CtState: 0x05, CtZone: 9, TunVNI: 777}).Pack()
	if m.Matches(k2) {
		t.Fatal("decoded match must reject an out-of-prefix key")
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	fm := FlowMod{
		Command: FlowModAdd, TableID: 7, Priority: 100, Cookie: 0xfeed,
		Match: matchForTest(),
		Actions: []ofproto.Action{
			ofproto.Meter(4),
			ofproto.PopVLAN(),
			ofproto.SetEthDst(hdr.MAC{1, 2, 3, 4, 5, 6}),
			ofproto.DecTTL(),
			ofproto.PushVLAN(100, 3),
			ofproto.Output(9),
			ofproto.GotoTable(20),
		},
	}
	msg := EncodeFlowMod(fm)
	got, err := DecodeFlowMod(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TableID != 7 || got.Priority != 100 || got.Cookie != 0xfeed || got.Command != FlowModAdd {
		t.Fatalf("fixed fields: %+v", got)
	}
	if got.Match.Key != fm.Match.Key || got.Match.Mask != fm.Match.Mask {
		t.Fatal("match mismatch")
	}
	if len(got.Actions) != len(fm.Actions) {
		t.Fatalf("actions = %v", got.Actions)
	}
	// Meter first, goto last (ordering contract).
	if got.Actions[0].Type != ofproto.ActionMeter || got.Actions[0].MeterID != 4 {
		t.Fatalf("first action = %v", got.Actions[0])
	}
	if got.Actions[len(got.Actions)-1].Type != ofproto.ActionGoto || got.Actions[len(got.Actions)-1].Table != 20 {
		t.Fatalf("last action = %v", got.Actions[len(got.Actions)-1])
	}
	for _, a := range got.Actions {
		if a.Type == ofproto.ActionPushVLAN {
			if a.VLAN != 100 || a.VLANPrio != 3 {
				t.Fatalf("push_vlan = %+v", a)
			}
		}
		if a.Type == ofproto.ActionSetEthDst && a.MAC != (hdr.MAC{1, 2, 3, 4, 5, 6}) {
			t.Fatalf("set_eth_dst = %v", a.MAC)
		}
	}
}

func TestFlowModCTAction(t *testing.T) {
	fm := FlowMod{
		Command: FlowModAdd, TableID: 0, Priority: 5,
		Match: ofproto.MatchAny(),
		Actions: []ofproto.Action{
			ofproto.CTNat(42, 30, conntrack.NAT{Kind: conntrack.SNAT,
				Addr: hdr.MakeIP4(192, 0, 2, 1), Port: 40000}),
		},
	}
	got, err := DecodeFlowMod(EncodeFlowMod(fm))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Actions) != 1 {
		t.Fatalf("actions = %v", got.Actions)
	}
	a := got.Actions[0]
	if a.Type != ofproto.ActionCT || !a.Commit || a.Zone != 42 || a.Table != 30 {
		t.Fatalf("ct = %+v", a)
	}
	if a.NAT.Kind != conntrack.SNAT || a.NAT.Addr != hdr.MakeIP4(192, 0, 2, 1) || a.NAT.Port != 40000 {
		t.Fatalf("nat = %+v", a.NAT)
	}
}

func TestFlowModTunnelActions(t *testing.T) {
	cfg := tunnel.Config{Kind: tunnel.Geneve, VNI: 5001,
		LocalIP: hdr.MakeIP4(172, 16, 0, 1), RemoteIP: hdr.MakeIP4(172, 16, 0, 2)}
	fm := FlowMod{
		Match:   ofproto.MatchAny(),
		Actions: []ofproto.Action{ofproto.SetTunnel(cfg), ofproto.Output(2)},
	}
	got, err := DecodeFlowMod(EncodeFlowMod(fm))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Actions) != 2 {
		t.Fatalf("actions = %v", got.Actions)
	}
	st := got.Actions[0]
	if st.Type != ofproto.ActionSetTunnel || st.Tunnel.Kind != cfg.Kind ||
		st.Tunnel.VNI != cfg.VNI || st.Tunnel.LocalIP != cfg.LocalIP ||
		st.Tunnel.RemoteIP != cfg.RemoteIP {
		t.Fatalf("set_tunnel = %+v", st.Tunnel)
	}
	if got.Actions[1].Type != ofproto.ActionOutput || got.Actions[1].Port != 2 {
		t.Fatalf("output = %+v", got.Actions[1])
	}

	// Tunnel pop.
	fm2 := FlowMod{Match: ofproto.MatchAny(),
		Actions: []ofproto.Action{ofproto.TunnelPop(100)}}
	got2, err := DecodeFlowMod(EncodeFlowMod(fm2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Actions[0].Type != ofproto.ActionTunnelPop || got2.Actions[0].Port != 100 {
		t.Fatalf("tnl_pop = %+v", got2.Actions[0])
	}
}

func TestFlowModDropAction(t *testing.T) {
	fm := FlowMod{Match: ofproto.MatchAny(), Actions: []ofproto.Action{ofproto.Drop()}}
	got, err := DecodeFlowMod(EncodeFlowMod(fm))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Actions) != 1 || got.Actions[0].Type != ofproto.ActionDrop {
		t.Fatalf("actions = %v", got.Actions)
	}
}

func TestFlowModOverTCP(t *testing.T) {
	// Full round trip across a real socket: the agent side writes, the
	// switch side reads.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	fm := FlowMod{Command: FlowModAdd, TableID: 1, Priority: 10,
		Match:   matchForTest(),
		Actions: []ofproto.Action{ofproto.Output(4)}}

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		msg, err := ReadMessage(conn)
		if err != nil {
			done <- err
			return
		}
		got, err := DecodeFlowMod(msg)
		if err != nil {
			done <- err
			return
		}
		if got.Match.Key != fm.Match.Key || got.Actions[0].Port != 4 {
			done <- err
			return
		}
		done <- nil
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := EncodeFlowMod(fm)
	msg.Xid = 42
	if err := WriteMessage(conn, msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMatchRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeMatch([]byte{0, 1}); err == nil {
		t.Fatal("short match must fail")
	}
	// TLV with payload overrunning.
	bad := make([]byte, 16)
	bad[1] = 1 // type 1
	bad[3] = 12
	bad[4], bad[5] = 0x80, 0x00
	bad[6] = oxmInPort << 1
	bad[7] = 200 // absurd length
	if _, _, err := DecodeMatch(bad); err == nil {
		t.Fatal("overrunning TLV must fail")
	}
}

func TestFlowStatsRoundTrip(t *testing.T) {
	entries := []FlowStatEntry{
		{Table: 0, Priority: 100, Packets: 1234, Cookie: 0xfeed},
		{Table: 10, Priority: 5, Packets: 0, Cookie: 0},
	}
	req := FlowStatsRequest(9, 0xff)
	table, err := ParseFlowStatsRequest(req)
	if err != nil || table != 0xff {
		t.Fatalf("request round trip: %d, %v", table, err)
	}
	got, err := ParseFlowStatsReply(FlowStatsReply(9, entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Fatalf("entries = %+v", got)
	}
}

func TestFlowStatsRejectsGarbage(t *testing.T) {
	if _, err := ParseFlowStatsRequest(Hello(1)); err == nil {
		t.Fatal("hello is not a stats request")
	}
	bad := FlowStatsReply(1, []FlowStatEntry{{}})
	bad.Body = bad.Body[:len(bad.Body)-4]
	if _, err := ParseFlowStatsReply(bad); err == nil {
		t.Fatal("truncated reply must fail")
	}
}
