package openflow

import (
	"encoding/binary"
	"fmt"
)

// Multipart message types (ofp_multipart_type).
const (
	MultipartFlow = 1
)

// FlowStatEntry is one row of an ovs-ofctl dump-flows style reply.
type FlowStatEntry struct {
	Table    uint8
	Priority int
	Packets  uint64
	Cookie   uint64
}

const flowStatEntrySize = 24

// FlowStatsRequest builds a multipart flow-stats request for one table
// (0xff requests all tables).
func FlowStatsRequest(xid uint32, table uint8) Message {
	body := make([]byte, 16)
	binary.BigEndian.PutUint16(body[0:2], MultipartFlow)
	body[8] = table
	return Message{Type: TypeMultipartReq, Xid: xid, Body: body}
}

// ParseFlowStatsRequest extracts the requested table.
func ParseFlowStatsRequest(m Message) (uint8, error) {
	if m.Type != TypeMultipartReq || len(m.Body) < 16 {
		return 0, fmt.Errorf("openflow: not a multipart request")
	}
	if binary.BigEndian.Uint16(m.Body[0:2]) != MultipartFlow {
		return 0, fmt.Errorf("openflow: unsupported multipart type %d",
			binary.BigEndian.Uint16(m.Body[0:2]))
	}
	return m.Body[8], nil
}

// FlowStatsReply builds the reply carrying the entries.
func FlowStatsReply(xid uint32, entries []FlowStatEntry) Message {
	body := make([]byte, 8+len(entries)*flowStatEntrySize)
	binary.BigEndian.PutUint16(body[0:2], MultipartFlow)
	off := 8
	for _, e := range entries {
		binary.BigEndian.PutUint16(body[off:], flowStatEntrySize)
		body[off+2] = e.Table
		binary.BigEndian.PutUint16(body[off+4:], uint16(e.Priority))
		binary.BigEndian.PutUint64(body[off+8:], e.Packets)
		binary.BigEndian.PutUint64(body[off+16:], e.Cookie)
		off += flowStatEntrySize
	}
	return Message{Type: TypeMultipartReply, Xid: xid, Body: body}
}

// ParseFlowStatsReply decodes the entries.
func ParseFlowStatsReply(m Message) ([]FlowStatEntry, error) {
	if m.Type != TypeMultipartReply || len(m.Body) < 8 {
		return nil, fmt.Errorf("openflow: not a multipart reply")
	}
	if binary.BigEndian.Uint16(m.Body[0:2]) != MultipartFlow {
		return nil, fmt.Errorf("openflow: unsupported multipart type")
	}
	b := m.Body[8:]
	var out []FlowStatEntry
	for len(b) > 0 {
		if len(b) < flowStatEntrySize {
			return nil, fmt.Errorf("openflow: truncated flow stat entry")
		}
		length := int(binary.BigEndian.Uint16(b[0:2]))
		if length < flowStatEntrySize || length > len(b) {
			return nil, fmt.Errorf("openflow: bad flow stat entry length %d", length)
		}
		out = append(out, FlowStatEntry{
			Table:    b[2],
			Priority: int(binary.BigEndian.Uint16(b[4:6])),
			Packets:  binary.BigEndian.Uint64(b[8:16]),
			Cookie:   binary.BigEndian.Uint64(b[16:24]),
		})
		b = b[length:]
	}
	return out, nil
}
