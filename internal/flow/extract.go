package flow

import (
	"encoding/binary"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

// Extract performs the miniflow_extract analog: a single pass over the
// packet's headers that fills a packed Key and records the L3/L4 offsets in
// the packet metadata. Following OVS (and the DecodingLayerParser idiom from
// gopacket), it decodes only the layers it recognizes, stops quietly at the
// first unparseable byte, and never allocates: a malformed or truncated
// packet simply yields a key that matches only as far as it parsed.
func Extract(p *packet.Packet) Key {
	var k Key
	d := p.Data

	// Metadata words first: they are independent of packet bytes.
	k[wMeta] = uint64(p.InPort)<<32 | uint64(p.RecircID)
	k[wIPMeta] |= uint64(p.CtState)<<24 | uint64(p.CtZone)
	k[wTunSrc] |= uint64(p.CtMark)
	if t := p.Tunnel; t != nil {
		k[wTunnel] = uint64(t.VNI)<<32 | uint64(t.DstIP)
		k[wTunSrc] |= uint64(t.SrcIP) << 32
	}

	if len(d) < hdr.EthernetSize {
		return k
	}
	// Ethernet addresses.
	k[wEthDst] = uint64(d[0])<<56 | uint64(d[1])<<48 | uint64(d[2])<<40 |
		uint64(d[3])<<32 | uint64(d[4])<<24 | uint64(d[5])<<16 |
		uint64(d[6])<<8 | uint64(d[7])
	k[wEthSrc] = uint64(d[8])<<56 | uint64(d[9])<<48 | uint64(d[10])<<40 |
		uint64(d[11])<<32
	etherType := hdr.EtherType(binary.BigEndian.Uint16(d[12:14]))
	off := hdr.EthernetSize
	if etherType == hdr.EtherTypeVLAN {
		if len(d) < off+hdr.VLANSize {
			return k
		}
		tci := binary.BigEndian.Uint16(d[14:16])
		k[wEthSrc] |= uint64(VLANPresent | tci&0xefff)
		etherType = hdr.EtherType(binary.BigEndian.Uint16(d[16:18]))
		off += hdr.VLANSize
	}
	k[wEthSrc] |= uint64(etherType) << 16
	p.L3Offset = off

	switch etherType {
	case hdr.EtherTypeIPv4:
		off = extractIPv4(p, k[:], d, off)
	case hdr.EtherTypeIPv6:
		off = extractIPv6(p, k[:], d, off)
	case hdr.EtherTypeARP:
		extractARP(k[:], d, off)
	}
	_ = off
	return k
}

func extractIPv4(p *packet.Packet, k []uint64, d []byte, off int) int {
	if len(d) < off+hdr.IPv4MinSize || d[off]>>4 != 4 {
		return off
	}
	ihl := int(d[off]&0x0f) * 4
	if ihl < hdr.IPv4MinSize || len(d) < off+ihl {
		return off
	}
	src := binary.BigEndian.Uint32(d[off+12 : off+16])
	dst := binary.BigEndian.Uint32(d[off+16 : off+20])
	k[wIP4] = uint64(src)<<32 | uint64(dst)
	proto := hdr.IPProto(d[off+9])
	tos := d[off+1]
	ttl := d[off+8]
	flags := binary.BigEndian.Uint16(d[off+6 : off+8])
	var frag uint8
	if flags&0x2000 != 0 || flags&0x1fff != 0 {
		if flags&0x1fff != 0 {
			frag = 3 // later fragment: no L4 header
		} else {
			frag = 1 // first fragment
		}
	}
	k[wIPMeta] |= uint64(proto)<<56 | uint64(tos)<<48 | uint64(ttl)<<40 | uint64(frag)<<32
	l4 := off + ihl
	p.L4Offset = l4
	if frag == 3 {
		return l4
	}
	extractL4(k, d, l4, proto)
	return l4
}

func extractIPv6(p *packet.Packet, k []uint64, d []byte, off int) int {
	if len(d) < off+hdr.IPv6Size || d[off]>>4 != 6 {
		return off
	}
	k[wIP6SrcA] = be64(d[off+8 : off+16])
	k[wIP6SrcB] = be64(d[off+16 : off+24])
	k[wIP6DstA] = be64(d[off+24 : off+32])
	k[wIP6DstB] = be64(d[off+32 : off+40])
	proto := hdr.IPProto(d[off+6])
	tc := uint8(binary.BigEndian.Uint32(d[off:off+4]) >> 20)
	hop := d[off+7]
	k[wIPMeta] |= uint64(proto)<<56 | uint64(tc)<<48 | uint64(hop)<<40
	l4 := off + hdr.IPv6Size
	p.L4Offset = l4
	extractL4(k, d, l4, proto)
	return l4
}

func extractL4(k []uint64, d []byte, off int, proto hdr.IPProto) {
	switch proto {
	case hdr.IPProtoTCP:
		if len(d) < off+hdr.TCPMinSize {
			return
		}
		sp := binary.BigEndian.Uint16(d[off : off+2])
		dp := binary.BigEndian.Uint16(d[off+2 : off+4])
		flags := d[off+13] & 0x3f
		k[wL4] |= uint64(sp)<<48 | uint64(dp)<<32 | uint64(flags)<<24
	case hdr.IPProtoUDP:
		if len(d) < off+hdr.UDPSize {
			return
		}
		sp := binary.BigEndian.Uint16(d[off : off+2])
		dp := binary.BigEndian.Uint16(d[off+2 : off+4])
		k[wL4] |= uint64(sp)<<48 | uint64(dp)<<32
	case hdr.IPProtoICMP, hdr.IPProtoICMPv6:
		if len(d) < off+2 {
			return
		}
		k[wL4] |= uint64(d[off])<<16 | uint64(d[off+1])<<8
	}
}

func extractARP(k []uint64, d []byte, off int) {
	if len(d) < off+hdr.ARPSize {
		return
	}
	// OVS maps the ARP opcode into the nw_proto slot and SPA/TPA into the
	// nw_src/nw_dst slots.
	op := binary.BigEndian.Uint16(d[off+6 : off+8])
	spa := binary.BigEndian.Uint32(d[off+14 : off+18])
	tpa := binary.BigEndian.Uint32(d[off+24 : off+28])
	k[wIPMeta] |= uint64(uint8(op)) << 56
	k[wIP4] = uint64(spa)<<32 | uint64(tpa)
}

// RSSHash computes the 5-tuple receive-side-scaling hash the NIC applies to
// spread flows across queues, and that OVS computes in software when the
// hardware hash is unavailable over AF_XDP (Section 5.5).
func RSSHash(k Key) uint32 {
	// Hash only the addressing words so that the hash is symmetric-free
	// but stable per flow: IPv4/IPv6 addresses, protocol, ports.
	h := uint64(0x2d358dccaa6c78a5)
	for _, w := range []uint64{k[wIP4], k[wIPMeta] >> 56, k[wL4] >> 32,
		k[wIP6SrcA], k[wIP6SrcB], k[wIP6DstA], k[wIP6DstB]} {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return uint32(h)
}
