package flow

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

// FuzzExtract throws arbitrary bytes at the flow extractor, the strict
// malformed-frame classifier, and the header parsers behind them. The
// contract under fuzzing is the slow-path one: malformed packets must never
// panic — they may only yield partial keys (Extract) or count as drops
// (Malformed); this is what lets the datapaths route parse failures to
// MalformedDrops instead of crashing the switch.
func FuzzExtract(f *testing.F) {
	valid := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	f.Add(valid)
	f.Add(valid[:17])                // truncated mid-IPv4
	f.Add(valid[:hdr.EthernetSize])  // bare Ethernet
	f.Add(hdr.PushVLAN(valid, 7, 3)) // VLAN-tagged
	f.Add([]byte{})
	// Ethernet claiming IPv6/ARP with nothing behind it.
	f.Add(append(append([]byte(nil), valid[:12]...), 0x86, 0xdd))
	f.Add(append(append([]byte(nil), valid[:12]...), 0x08, 0x06))
	// IPv4 with a lying IHL.
	bad := append([]byte(nil), valid...)
	bad[hdr.EthernetSize] = 0x4f
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := packet.New(append([]byte(nil), data...))
		p.InPort = 1
		_ = Extract(p)
		_ = Malformed(p)
		if eth, err := hdr.ParseEthernet(p.Data); err == nil {
			_, _ = hdr.ParseIPv4(p.Data[eth.HeaderLen:])
		}
	})
}
