package flow

import (
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

// Malformed reports whether the packet fails strict header validation for
// the layers its EtherType promises. Extract deliberately never errors (it
// stops quietly at the first unparseable byte, like miniflow_extract), so
// the slow path uses this check to split genuine parse failures — counted
// as MalformedDrops, the analog of the kernel flow extractor's EINVAL —
// from policy drops. It is a pure read: no CPU cost is charged, so calling
// it never perturbs virtual time.
func Malformed(p *packet.Packet) bool {
	eth, err := hdr.ParseEthernet(p.Data)
	if err != nil {
		return true
	}
	l3 := p.Data[eth.HeaderLen:]
	switch eth.Type {
	case hdr.EtherTypeIPv4:
		if _, err := hdr.ParseIPv4(l3); err != nil {
			return true
		}
	case hdr.EtherTypeIPv6:
		if len(l3) < hdr.IPv6Size {
			return true
		}
	case hdr.EtherTypeARP:
		if len(l3) < hdr.ARPSize {
			return true
		}
	}
	return false
}
