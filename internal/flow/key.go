// Package flow implements the datapath's flow key: the set of packet header
// fields OVS matches on, in both a human-oriented Fields form and a packed
// fixed-width Key form that supports the masked matching, hashing, and
// equality operations the classifiers need.
//
// The duality mirrors OVS itself: struct flow (Fields) for the slow path and
// miniflow (Key) for the fast path. The packed form makes a megaflow mask a
// simple bitwise template: a rule matches a packet when
// key.Apply(mask) == rule.Apply(mask).
package flow

import (
	"fmt"

	"ovsxdp/internal/packet/hdr"
)

// KeyWords is the number of 64-bit words in a packed Key.
const KeyWords = 12

// Word layout of the packed key. Each constant names the word index.
const (
	wMeta    = 0  // inPort(hi32) | recircID(lo32)
	wEthDst  = 1  // ethDst[0:6]<<16 | ethSrc[0:2]
	wEthSrc  = 2  // ethSrc[2:6]<<32 | ethType<<16 | vlanTCI
	wIP4     = 3  // ip4Src(hi32) | ip4Dst(lo32); ARP SPA/TPA reuse these
	wIPMeta  = 4  // proto<<56 | tos<<48 | ttl<<40 | frag<<32 | ctState<<24 | ctZone
	wL4      = 5  // tpSrc<<48 | tpDst<<32 | tcpFlags<<24 | icmpType<<16 | icmpCode<<8
	wIP6SrcA = 6  // ip6Src bytes 0..7
	wIP6SrcB = 7  // ip6Src bytes 8..15
	wIP6DstA = 8  // ip6Dst bytes 0..7
	wIP6DstB = 9  // ip6Dst bytes 8..15
	wTunnel  = 10 // tunVNI(hi32) | tunDst(lo32)
	wTunSrc  = 11 // tunSrc(hi32) | ctMark(lo32)
)

// VLANPresent is the bit set in the packed VLAN TCI when a tag exists,
// mirroring OVS's use of the CFI bit so that "no tag" and "tag with VID 0"
// are distinguishable.
const VLANPresent = 0x1000

// Key is the packed flow key.
type Key [KeyWords]uint64

// Mask is a bit template over Key: 1-bits participate in matching.
type Mask Key

// Fields is the human-oriented flow key, used by the slow path, rule
// construction, and tests.
type Fields struct {
	InPort   uint32
	RecircID uint32

	EthDst  hdr.MAC
	EthSrc  hdr.MAC
	EthType hdr.EtherType
	VLANTCI uint16 // VLANPresent | prio<<13 | vid, or 0 for untagged

	IP4Src  hdr.IP4 // also ARP SPA
	IP4Dst  hdr.IP4 // also ARP TPA
	IPv6Src hdr.IP6
	IPv6Dst hdr.IP6

	IPProto hdr.IPProto // also low 8 bits of ARP op
	IPTOS   uint8
	IPTTL   uint8
	IPFrag  uint8 // 0 not fragmented, 1 first fragment, 3 later fragment

	TPSrc    uint16 // TCP/UDP source port
	TPDst    uint16 // TCP/UDP destination port
	TCPFlags uint8
	ICMPType uint8
	ICMPCode uint8

	CtState packetCtState
	CtZone  uint16
	CtMark  uint32

	TunVNI uint32
	TunSrc hdr.IP4
	TunDst hdr.IP4
}

// packetCtState aliases the conntrack state bits without importing the
// packet package (flow is below packet in the dependency order used by the
// extractor file, which lives in this package and imports packet).
type packetCtState = uint8

// Pack converts Fields to the packed Key form.
func (f *Fields) Pack() Key {
	var k Key
	k[wMeta] = uint64(f.InPort)<<32 | uint64(f.RecircID)
	k[wEthDst] = uint64(f.EthDst[0])<<56 | uint64(f.EthDst[1])<<48 |
		uint64(f.EthDst[2])<<40 | uint64(f.EthDst[3])<<32 |
		uint64(f.EthDst[4])<<24 | uint64(f.EthDst[5])<<16 |
		uint64(f.EthSrc[0])<<8 | uint64(f.EthSrc[1])
	k[wEthSrc] = uint64(f.EthSrc[2])<<56 | uint64(f.EthSrc[3])<<48 |
		uint64(f.EthSrc[4])<<40 | uint64(f.EthSrc[5])<<32 |
		uint64(f.EthType)<<16 | uint64(f.VLANTCI)
	k[wIP4] = uint64(f.IP4Src)<<32 | uint64(f.IP4Dst)
	k[wIPMeta] = uint64(f.IPProto)<<56 | uint64(f.IPTOS)<<48 |
		uint64(f.IPTTL)<<40 | uint64(f.IPFrag)<<32 |
		uint64(f.CtState)<<24 | uint64(f.CtZone)
	k[wL4] = uint64(f.TPSrc)<<48 | uint64(f.TPDst)<<32 |
		uint64(f.TCPFlags)<<24 | uint64(f.ICMPType)<<16 | uint64(f.ICMPCode)<<8
	k[wIP6SrcA] = be64(f.IPv6Src[0:8])
	k[wIP6SrcB] = be64(f.IPv6Src[8:16])
	k[wIP6DstA] = be64(f.IPv6Dst[0:8])
	k[wIP6DstB] = be64(f.IPv6Dst[8:16])
	k[wTunnel] = uint64(f.TunVNI)<<32 | uint64(f.TunDst)
	k[wTunSrc] = uint64(f.TunSrc)<<32 | uint64(f.CtMark)
	return k
}

// Unpack converts the packed key back to Fields.
func (k Key) Unpack() Fields {
	var f Fields
	f.InPort = uint32(k[wMeta] >> 32)
	f.RecircID = uint32(k[wMeta])
	f.EthDst = hdr.MAC{byte(k[wEthDst] >> 56), byte(k[wEthDst] >> 48),
		byte(k[wEthDst] >> 40), byte(k[wEthDst] >> 32),
		byte(k[wEthDst] >> 24), byte(k[wEthDst] >> 16)}
	f.EthSrc = hdr.MAC{byte(k[wEthDst] >> 8), byte(k[wEthDst]),
		byte(k[wEthSrc] >> 56), byte(k[wEthSrc] >> 48),
		byte(k[wEthSrc] >> 40), byte(k[wEthSrc] >> 32)}
	f.EthType = hdr.EtherType(k[wEthSrc] >> 16)
	f.VLANTCI = uint16(k[wEthSrc])
	f.IP4Src = hdr.IP4(k[wIP4] >> 32)
	f.IP4Dst = hdr.IP4(k[wIP4])
	f.IPProto = hdr.IPProto(k[wIPMeta] >> 56)
	f.IPTOS = uint8(k[wIPMeta] >> 48)
	f.IPTTL = uint8(k[wIPMeta] >> 40)
	f.IPFrag = uint8(k[wIPMeta] >> 32)
	f.CtState = uint8(k[wIPMeta] >> 24)
	f.CtZone = uint16(k[wIPMeta])
	f.TPSrc = uint16(k[wL4] >> 48)
	f.TPDst = uint16(k[wL4] >> 32)
	f.TCPFlags = uint8(k[wL4] >> 24)
	f.ICMPType = uint8(k[wL4] >> 16)
	f.ICMPCode = uint8(k[wL4] >> 8)
	put64(f.IPv6Src[0:8], k[wIP6SrcA])
	put64(f.IPv6Src[8:16], k[wIP6SrcB])
	put64(f.IPv6Dst[0:8], k[wIP6DstA])
	put64(f.IPv6Dst[8:16], k[wIP6DstB])
	f.TunVNI = uint32(k[wTunnel] >> 32)
	f.TunDst = hdr.IP4(k[wTunnel])
	f.TunSrc = hdr.IP4(k[wTunSrc] >> 32)
	f.CtMark = uint32(k[wTunSrc])
	return f
}

func be64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func put64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// Apply returns the key with all bits outside the mask cleared.
func (k Key) Apply(m Mask) Key {
	var out Key
	for i := range k {
		out[i] = k[i] & m[i]
	}
	return out
}

// Equal reports bitwise equality (Keys are comparable; this is a readable
// alias).
func (k Key) Equal(o Key) bool { return k == o }

// Hash returns a 32-bit hash of the full key, suitable for EMC indexing and
// RSS-style spreading. The mixer is xorshift-multiply per word with a final
// avalanche, deterministic across runs.
func (k Key) Hash(basis uint32) uint32 {
	h := uint64(basis) + 0x9e3779b97f4a7c15
	for _, w := range k {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h)
}

// HashMasked hashes only the masked bits of the key; two keys that are equal
// under the mask hash identically, the property tuple-space search relies
// on.
func (k Key) HashMasked(m Mask, basis uint32) uint32 {
	h := uint64(basis) + 0x9e3779b97f4a7c15
	for i, w := range k {
		h ^= w & m[i]
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h)
}

// String summarizes the key's main fields for diagnostics.
func (k Key) String() string {
	f := k.Unpack()
	return fmt.Sprintf("flow{port=%d recirc=%d %s->%s type=%s ip=%s->%s proto=%s tp=%d->%d ct=%02x zone=%d vni=%d}",
		f.InPort, f.RecircID, f.EthSrc, f.EthDst, f.EthType,
		f.IP4Src, f.IP4Dst, f.IPProto, f.TPSrc, f.TPDst, f.CtState, f.CtZone, f.TunVNI)
}

// --- Mask construction -----------------------------------------------------

// MaskNone matches nothing (all wildcard).
func MaskNone() Mask { return Mask{} }

// MaskAll matches every field exactly.
func MaskAll() Mask {
	var m Mask
	for i := range m {
		m[i] = ^uint64(0)
	}
	return m
}

// Union returns the field-wise OR of two masks.
func (m Mask) Union(o Mask) Mask {
	for i := range m {
		m[i] |= o[i]
	}
	return m
}

// Intersects reports whether m and o share any bit.
func (m Mask) Intersects(o Mask) bool {
	for i := range m {
		if m[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Covers reports whether every bit set in o is also set in m.
func (m Mask) Covers(o Mask) bool {
	for i := range m {
		if m[i]&o[i] != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the mask matches nothing.
func (m Mask) Empty() bool { return m == Mask{} }

// Bits counts the number of set bits, a proxy for match specificity.
func (m Mask) Bits() int {
	n := 0
	for _, w := range m {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// MaskBuilder accumulates per-field exact or prefix matches into a Mask.
type MaskBuilder struct{ m Mask }

// NewMaskBuilder returns an all-wildcard builder.
func NewMaskBuilder() *MaskBuilder { return &MaskBuilder{} }

// Build returns the accumulated mask.
func (b *MaskBuilder) Build() Mask { return b.m }

// InPort matches the input port exactly.
func (b *MaskBuilder) InPort() *MaskBuilder { b.m[wMeta] |= 0xffffffff << 32; return b }

// RecircID matches the recirculation id exactly.
func (b *MaskBuilder) RecircID() *MaskBuilder { b.m[wMeta] |= 0xffffffff; return b }

// EthDst matches the destination MAC exactly.
func (b *MaskBuilder) EthDst() *MaskBuilder { b.m[wEthDst] |= 0xffffffffffff0000; return b }

// EthSrc matches the source MAC exactly.
func (b *MaskBuilder) EthSrc() *MaskBuilder {
	b.m[wEthDst] |= 0xffff
	b.m[wEthSrc] |= 0xffffffff00000000
	return b
}

// EthType matches the EtherType exactly.
func (b *MaskBuilder) EthType() *MaskBuilder { b.m[wEthSrc] |= 0xffff0000; return b }

// VLAN matches the full VLAN TCI.
func (b *MaskBuilder) VLAN() *MaskBuilder { b.m[wEthSrc] |= 0xffff; return b }

// IP4Src matches the source address under a prefix of the given length.
func (b *MaskBuilder) IP4Src(prefixLen int) *MaskBuilder {
	b.m[wIP4] |= uint64(prefixMask32(prefixLen)) << 32
	return b
}

// IP4Dst matches the destination address under a prefix of the given length.
func (b *MaskBuilder) IP4Dst(prefixLen int) *MaskBuilder {
	b.m[wIP4] |= uint64(prefixMask32(prefixLen))
	return b
}

// IPv6Src matches the IPv6 source exactly.
func (b *MaskBuilder) IPv6Src() *MaskBuilder {
	b.m[wIP6SrcA] = ^uint64(0)
	b.m[wIP6SrcB] = ^uint64(0)
	return b
}

// IPv6Dst matches the IPv6 destination exactly.
func (b *MaskBuilder) IPv6Dst() *MaskBuilder {
	b.m[wIP6DstA] = ^uint64(0)
	b.m[wIP6DstB] = ^uint64(0)
	return b
}

// IPProto matches the transport protocol exactly.
func (b *MaskBuilder) IPProto() *MaskBuilder { b.m[wIPMeta] |= 0xff << 56; return b }

// IPTOS matches the TOS/DSCP byte exactly.
func (b *MaskBuilder) IPTOS() *MaskBuilder { b.m[wIPMeta] |= 0xff << 48; return b }

// IPTTL matches the TTL exactly.
func (b *MaskBuilder) IPTTL() *MaskBuilder { b.m[wIPMeta] |= 0xff << 40; return b }

// IPFrag matches the fragmentation state.
func (b *MaskBuilder) IPFrag() *MaskBuilder { b.m[wIPMeta] |= 0xff << 32; return b }

// CtState matches the conntrack state bits given.
func (b *MaskBuilder) CtState(bits uint8) *MaskBuilder {
	b.m[wIPMeta] |= uint64(bits) << 24
	return b
}

// CtZone matches the conntrack zone exactly.
func (b *MaskBuilder) CtZone() *MaskBuilder { b.m[wIPMeta] |= 0xffff; return b }

// CtMark matches the conntrack mark exactly.
func (b *MaskBuilder) CtMark() *MaskBuilder { b.m[wTunSrc] |= 0xffffffff; return b }

// TPSrc matches the transport source port exactly.
func (b *MaskBuilder) TPSrc() *MaskBuilder { b.m[wL4] |= 0xffff << 48; return b }

// TPDst matches the transport destination port exactly.
func (b *MaskBuilder) TPDst() *MaskBuilder { b.m[wL4] |= 0xffff << 32; return b }

// TCPFlags matches the given TCP flag bits.
func (b *MaskBuilder) TCPFlags(bits uint8) *MaskBuilder {
	b.m[wL4] |= uint64(bits) << 24
	return b
}

// ICMP matches ICMP type and code exactly.
func (b *MaskBuilder) ICMP() *MaskBuilder { b.m[wL4] |= 0xffff << 8; return b }

// TunVNI matches the tunnel VNI exactly.
func (b *MaskBuilder) TunVNI() *MaskBuilder { b.m[wTunnel] |= 0xffffffff << 32; return b }

// TunDst matches the tunnel destination IP exactly.
func (b *MaskBuilder) TunDst() *MaskBuilder { b.m[wTunnel] |= 0xffffffff; return b }

// TunSrc matches the tunnel source IP exactly.
func (b *MaskBuilder) TunSrc() *MaskBuilder { b.m[wTunSrc] |= 0xffffffff << 32; return b }

func prefixMask32(n int) uint32 {
	switch {
	case n <= 0:
		return 0
	case n >= 32:
		return ^uint32(0)
	default:
		return ^uint32(0) << (32 - n)
	}
}
