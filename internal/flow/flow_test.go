package flow

import (
	"testing"
	"testing/quick"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
	ipA  = hdr.MakeIP4(10, 0, 0, 1)
	ipB  = hdr.MakeIP4(10, 0, 0, 2)
)

func udpPacket() *packet.Packet {
	frame := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).
		UDPH(1234, 5678).PayloadLen(18).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 3
	return p
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := Fields{
		InPort: 5, RecircID: 2,
		EthDst: macB, EthSrc: macA, EthType: hdr.EtherTypeIPv4,
		VLANTCI: VLANPresent | 3<<13 | 100,
		IP4Src:  ipA, IP4Dst: ipB,
		IPProto: hdr.IPProtoTCP, IPTOS: 0x10, IPTTL: 63, IPFrag: 1,
		TPSrc: 80, TPDst: 1024, TCPFlags: hdr.TCPSyn,
		ICMPType: 8, ICMPCode: 1,
		CtState: 0x05, CtZone: 7, CtMark: 0xdeadbeef,
		TunVNI: 0xABCDE, TunSrc: hdr.MakeIP4(1, 1, 1, 1), TunDst: hdr.MakeIP4(2, 2, 2, 2),
	}
	f.IPv6Src[3] = 0x42
	f.IPv6Dst[12] = 0x24
	got := f.Pack().Unpack()
	if got != f {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, f)
	}
}

func TestPackUnpackProperty(t *testing.T) {
	// Any combination of representative values must round-trip.
	f := func(inPort, recirc uint32, sp, dp uint16, proto, tos uint8, src, dst uint32, vni uint32) bool {
		fields := Fields{
			InPort: inPort, RecircID: recirc,
			EthType: hdr.EtherTypeIPv4,
			IP4Src:  hdr.IP4(src), IP4Dst: hdr.IP4(dst),
			IPProto: hdr.IPProto(proto), IPTOS: tos,
			TPSrc: sp, TPDst: dp,
			TunVNI: vni & 0xffffff,
		}
		return fields.Pack().Unpack() == fields
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractUDP(t *testing.T) {
	p := udpPacket()
	k := Extract(p)
	f := k.Unpack()
	if f.InPort != 3 {
		t.Errorf("in_port = %d", f.InPort)
	}
	if f.EthSrc != macA || f.EthDst != macB {
		t.Errorf("macs = %s %s", f.EthSrc, f.EthDst)
	}
	if f.EthType != hdr.EtherTypeIPv4 {
		t.Errorf("eth type = %s", f.EthType)
	}
	if f.IP4Src != ipA || f.IP4Dst != ipB {
		t.Errorf("ips = %s %s", f.IP4Src, f.IP4Dst)
	}
	if f.IPProto != hdr.IPProtoUDP || f.IPTTL != 64 {
		t.Errorf("proto/ttl = %s/%d", f.IPProto, f.IPTTL)
	}
	if f.TPSrc != 1234 || f.TPDst != 5678 {
		t.Errorf("ports = %d %d", f.TPSrc, f.TPDst)
	}
	if p.L3Offset != 14 || p.L4Offset != 34 {
		t.Errorf("offsets = %d %d", p.L3Offset, p.L4Offset)
	}
}

func TestExtractTCPFlags(t *testing.T) {
	frame := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).
		TCPH(80, 1024, 1, 2, hdr.TCPSyn|hdr.TCPAck).Build()
	k := Extract(packet.New(frame))
	f := k.Unpack()
	if f.IPProto != hdr.IPProtoTCP || f.TCPFlags != hdr.TCPSyn|hdr.TCPAck {
		t.Fatalf("tcp extract wrong: %+v", f)
	}
}

func TestExtractVLAN(t *testing.T) {
	frame := hdr.NewBuilder().Eth(macA, macB).VLAN(100, 3).IPv4H(ipA, ipB, 64).
		UDPH(1, 2).PayloadLen(4).Build()
	p := packet.New(frame)
	f := Extract(p).Unpack()
	if f.VLANTCI != VLANPresent|3<<13|100 {
		t.Fatalf("vlan tci = %#x", f.VLANTCI)
	}
	if f.EthType != hdr.EtherTypeIPv4 || f.IP4Src != ipA {
		t.Fatal("inner ethertype/IP must still extract behind the tag")
	}
	if p.L3Offset != 18 {
		t.Fatalf("L3 offset = %d", p.L3Offset)
	}
}

func TestExtractUntaggedVsVID0(t *testing.T) {
	untagged := Extract(packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(4).Build()))
	tagged0 := Extract(packet.New(hdr.NewBuilder().Eth(macA, macB).VLAN(0, 0).
		IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(4).Build()))
	if untagged == tagged0 {
		t.Fatal("untagged and VID-0-tagged frames must extract differently")
	}
}

func TestExtractARP(t *testing.T) {
	frame := hdr.NewBuilder().Eth(macA, hdr.Broadcast).
		ARPH(hdr.ARPRequest, macA, ipA, hdr.MAC{}, ipB).Build()
	f := Extract(packet.New(frame)).Unpack()
	if f.EthType != hdr.EtherTypeARP {
		t.Fatalf("eth type = %s", f.EthType)
	}
	if f.IPProto != hdr.IPProto(hdr.ARPRequest) {
		t.Fatalf("arp op in proto slot = %d", f.IPProto)
	}
	if f.IP4Src != ipA || f.IP4Dst != ipB {
		t.Fatalf("SPA/TPA = %s/%s", f.IP4Src, f.IP4Dst)
	}
}

func TestExtractIPv6(t *testing.T) {
	var src, dst hdr.IP6
	src[15], dst[15] = 1, 2
	frame := hdr.NewBuilder().Eth(macA, macB).IPv6H(src, dst, 64).UDPH(53, 53).PayloadLen(8).Build()
	f := Extract(packet.New(frame)).Unpack()
	if f.EthType != hdr.EtherTypeIPv6 || f.IPv6Src != src || f.IPv6Dst != dst {
		t.Fatalf("ipv6 extract wrong: %+v", f)
	}
	if f.TPSrc != 53 || f.IPProto != hdr.IPProtoUDP {
		t.Fatal("ipv6 L4 extract wrong")
	}
}

func TestExtractICMP(t *testing.T) {
	frame := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).
		ICMPH(hdr.ICMPEchoRequest, 0, 1, 1).Build()
	f := Extract(packet.New(frame)).Unpack()
	if f.ICMPType != hdr.ICMPEchoRequest {
		t.Fatalf("icmp type = %d", f.ICMPType)
	}
}

func TestExtractFragment(t *testing.T) {
	// Build a UDP frame, then mark it as a later fragment.
	frame := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1111, 2222).PayloadLen(8).Build()
	frame[14+6] = 0x00
	frame[14+7] = 0x10 // fragment offset 16
	f := Extract(packet.New(frame)).Unpack()
	if f.IPFrag != 3 {
		t.Fatalf("frag = %d, want 3 (later fragment)", f.IPFrag)
	}
	if f.TPSrc != 0 || f.TPDst != 0 {
		t.Fatal("later fragments must not expose L4 ports")
	}
}

func TestExtractTruncatedNeverPanics(t *testing.T) {
	full := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(30).Build()
	for n := 0; n <= len(full); n++ {
		p := packet.New(full[:n])
		_ = Extract(p) // must not panic at any truncation point
	}
}

func TestExtractTunnelMetadata(t *testing.T) {
	p := udpPacket()
	p.Tunnel = &packet.TunnelInfo{VNI: 77, SrcIP: hdr.MakeIP4(9, 9, 9, 1), DstIP: hdr.MakeIP4(9, 9, 9, 2)}
	f := Extract(p).Unpack()
	if f.TunVNI != 77 || f.TunSrc != hdr.MakeIP4(9, 9, 9, 1) || f.TunDst != hdr.MakeIP4(9, 9, 9, 2) {
		t.Fatalf("tunnel metadata lost: %+v", f)
	}
}

func TestExtractCtMetadata(t *testing.T) {
	p := udpPacket()
	p.CtState = packet.CtTracked | packet.CtEstablished
	p.CtZone = 42
	p.CtMark = 0xbeef
	f := Extract(p).Unpack()
	if f.CtState != uint8(packet.CtTracked|packet.CtEstablished) || f.CtZone != 42 || f.CtMark != 0xbeef {
		t.Fatalf("ct metadata lost: %+v", f)
	}
}

func TestApplyMask(t *testing.T) {
	k := Extract(udpPacket())
	m := NewMaskBuilder().EthType().IPProto().TPDst().Build()
	masked := k.Apply(m)
	f := masked.Unpack()
	if f.TPDst != 5678 || f.IPProto != hdr.IPProtoUDP || f.EthType != hdr.EtherTypeIPv4 {
		t.Fatal("masked-in fields must survive")
	}
	if f.TPSrc != 0 || f.IP4Src != 0 || f.EthSrc != (hdr.MAC{}) || f.InPort != 0 {
		t.Fatal("masked-out fields must be cleared")
	}
}

func TestMaskedEquality(t *testing.T) {
	m := NewMaskBuilder().IP4Dst(32).IPProto().Build()
	a := Extract(udpPacket())

	other := udpPacket()
	// Different source IP, same destination and protocol.
	otherFrame := hdr.NewBuilder().Eth(macA, macB).IPv4H(hdr.MakeIP4(172, 16, 0, 9), ipB, 64).
		UDPH(999, 888).PayloadLen(18).Build()
	other.Data = otherFrame
	b := Extract(other)

	if a.Apply(m) != b.Apply(m) {
		t.Fatal("keys equal under mask must compare equal after Apply")
	}
	if a.HashMasked(m, 0) != b.HashMasked(m, 0) {
		t.Fatal("masked hashes must agree for keys equal under the mask")
	}
	if a == b {
		t.Fatal("full keys must differ")
	}
}

func TestMaskPrefix(t *testing.T) {
	m := NewMaskBuilder().IP4Src(24).Build()
	f1 := Fields{IP4Src: hdr.MakeIP4(10, 1, 2, 3)}
	f2 := Fields{IP4Src: hdr.MakeIP4(10, 1, 2, 200)}
	f3 := Fields{IP4Src: hdr.MakeIP4(10, 1, 9, 3)}
	if f1.Pack().Apply(m) != f2.Pack().Apply(m) {
		t.Fatal("same /24 must match")
	}
	if f1.Pack().Apply(m) == f3.Pack().Apply(m) {
		t.Fatal("different /24 must not match")
	}
}

func TestMaskCoversAndUnion(t *testing.T) {
	narrow := NewMaskBuilder().EthType().Build()
	wide := NewMaskBuilder().EthType().IPProto().TPDst().Build()
	if !wide.Covers(narrow) {
		t.Fatal("wide must cover narrow")
	}
	if narrow.Covers(wide) {
		t.Fatal("narrow must not cover wide")
	}
	u := narrow.Union(NewMaskBuilder().IPProto().TPDst().Build())
	if u != wide {
		t.Fatal("union mismatch")
	}
	if MaskNone().Bits() != 0 {
		t.Fatal("empty mask has no bits")
	}
	if !MaskAll().Covers(wide) {
		t.Fatal("MaskAll covers everything")
	}
	if !MaskNone().Empty() || MaskAll().Empty() {
		t.Fatal("Empty predicate wrong")
	}
}

func TestHashDistribution(t *testing.T) {
	// Hashes of sequential flows must spread evenly across buckets.
	const n, buckets = 8192, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		f := Fields{IP4Src: hdr.IP4(0x0a000000 + uint32(i)), IP4Dst: ipB,
			IPProto: hdr.IPProtoUDP, TPSrc: uint16(i), TPDst: 80}
		counts[f.Pack().Hash(0)%buckets]++
	}
	for i, c := range counts {
		if c < n/buckets*7/10 || c > n/buckets*13/10 {
			t.Fatalf("bucket %d has %d, want ~%d", i, c, n/buckets)
		}
	}
}

func TestHashBasisChangesHash(t *testing.T) {
	k := Extract(udpPacket())
	if k.Hash(1) == k.Hash(2) {
		t.Fatal("different bases should give different hashes")
	}
}

func TestRSSHashStablePerFlow(t *testing.T) {
	a := Extract(udpPacket())
	b := Extract(udpPacket())
	if RSSHash(a) != RSSHash(b) {
		t.Fatal("same flow must hash identically")
	}
	// Different ports => different flow => (almost surely) different hash.
	other := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1234, 9999).PayloadLen(18).Build()
	c := Extract(packet.New(other))
	if RSSHash(a) == RSSHash(c) {
		t.Fatal("different flows should spread")
	}
}

func TestRSSHashIgnoresEthernet(t *testing.T) {
	// RSS spreads on the 5-tuple; MAC addresses must not matter.
	f1 := hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(4).Build()
	f2 := hdr.NewBuilder().Eth(macB, macA).IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(4).Build()
	if RSSHash(Extract(packet.New(f1))) != RSSHash(Extract(packet.New(f2))) {
		t.Fatal("RSS hash must depend only on the 5-tuple")
	}
}

func TestKeyString(t *testing.T) {
	if Extract(udpPacket()).String() == "" {
		t.Fatal("String must produce output")
	}
}

func BenchmarkExtract(b *testing.B) {
	p := udpPacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(p)
	}
}

func BenchmarkHashMasked(b *testing.B) {
	k := Extract(udpPacket())
	m := NewMaskBuilder().InPort().EthType().IPProto().IP4Src(32).IP4Dst(32).TPSrc().TPDst().Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.HashMasked(m, 42)
	}
}
