package nicsim

import (
	"fmt"

	"ovsxdp/internal/flow"
)

// FlowTable is the NIC's hardware flow-offload table: the tc/ASAP²-style
// rule memory that lets established flows bypass the host CPU entirely.
// Unlike the ntuple steering rules (which only pick a receive queue), a
// flow-table entry carries an opaque cookie the datapath uses to forward
// the packet without touching its software caches.
//
// The table is exact-match on the full flow key — the hardware analog of
// the EMC, not of the masked megaflow classifier — so lookup is one map
// probe, O(1) regardless of occupancy. Capacity is bounded (real rule
// memories hold thousands, not millions, of entries); when full, Install
// evicts the entry with the lowest observed hit rate, ties broken LRU.
// An entry that saw traffic in the current or previous readback interval
// is never displaced by a new install (admission control: a hot resident
// rule beats an unproven candidate), so a saturated table of active flows
// refuses new installs instead of thrashing.
//
// Hardware counts matches privately; Readback is the periodic driver sweep
// that hands the per-entry hit deltas back to the host. The per-interval
// delta it captures doubles as each entry's eviction rate.
//
// All bookkeeping is plain integers and map/slice operations — Lookup and
// Install allocate nothing in steady state, and iteration for readback and
// eviction walks an order slice, never a Go map, so every decision is
// deterministic for a given operation sequence.
type FlowTable struct {
	capacity int // configured capacity
	clamp    int // fault-injected effective capacity; 0 = unclamped

	entries map[flow.Key]*HWFlow
	// order holds the same entries in a deterministic sequence (swap-remove
	// on delete); readback and victim scans iterate it instead of the map.
	order []*HWFlow
	// seq is the lookup clock for LRU tie-breaking.
	seq uint64
	// blocked short-circuits install attempts while the table is full of
	// entries with nonzero rates; cleared whenever rates or occupancy can
	// have changed (readback, uninstall, clamp release).
	blocked bool

	// Counters: the conservation ledger is
	// Installs == Evictions + Uninstalls + Len().
	Installs   uint64 // entries admitted
	Evictions  uint64 // entries displaced by capacity pressure (or clamp)
	Uninstalls uint64 // entries removed explicitly (flow delete / flush)
	Refused    uint64 // install attempts declined by admission control
	Hits       uint64 // packets matched in hardware
	Readbacks  uint64 // counter readback sweeps
}

// HWFlow is one installed hardware flow-table entry.
type HWFlow struct {
	Key    flow.Key
	Cookie any

	// hits counts hardware matches since install; hitsRead marks the
	// portion already surrendered by Readback.
	hits     uint64
	hitsRead uint64
	// rate is the hit delta captured by the last readback sweep — the
	// per-interval rate eviction ranks by.
	rate uint64
	// lastHit is the table's lookup clock at the most recent match (LRU).
	lastHit uint64
	// slot is the entry's index in order, for O(1) swap-remove.
	slot int
}

// score is the entry's liveness for eviction ranking: the last interval's
// rate plus any hits accumulated since, so a just-installed entry that is
// already passing traffic outranks a gone-quiet one.
func (e *HWFlow) score() uint64 { return e.rate + e.hits - e.hitsRead }

// NewFlowTable builds an empty table with the given capacity.
func NewFlowTable(capacity int) *FlowTable {
	if capacity < 1 {
		capacity = 1
	}
	return &FlowTable{
		capacity: capacity,
		entries:  make(map[flow.Key]*HWFlow, capacity),
	}
}

// Capacity returns the configured capacity.
func (t *FlowTable) Capacity() int { return t.capacity }

// EffectiveCapacity returns the capacity in force, accounting for an
// active pressure clamp.
func (t *FlowTable) EffectiveCapacity() int {
	if t.clamp > 0 && t.clamp < t.capacity {
		return t.clamp
	}
	return t.capacity
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int { return len(t.order) }

// Lookup matches a packet's exact key against the rule memory, counting
// the hit in hardware. The returned cookie is whatever Install stored.
func (t *FlowTable) Lookup(key flow.Key) (any, bool) {
	e, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	e.hits++
	t.seq++
	e.lastHit = t.seq
	t.Hits++
	return e.Cookie, true
}

// Install admits an exact-match rule. An existing entry for the key has
// its cookie replaced in place. When the table is full, the lowest-scored
// entry is evicted to make room — unless every resident entry is still
// passing traffic, in which case the install is refused (admission
// control). The evicted entry, if any, is returned so the caller can
// unmark the displaced flow.
func (t *FlowTable) Install(key flow.Key, cookie any) (evicted *HWFlow, ok bool) {
	if e, exists := t.entries[key]; exists {
		e.Cookie = cookie
		return nil, true
	}
	if len(t.order) >= t.EffectiveCapacity() {
		if t.blocked {
			t.Refused++
			return nil, false
		}
		v := t.victim()
		if v == nil || v.score() > 0 {
			t.blocked = true
			t.Refused++
			return nil, false
		}
		evicted = v
		t.remove(v)
		t.Evictions++
	}
	e := &HWFlow{Key: key, Cookie: cookie, slot: len(t.order)}
	t.entries[key] = e
	t.order = append(t.order, e)
	t.Installs++
	return evicted, true
}

// Uninstall removes the rule for key (flow delete, flush, invalidation),
// returning it. A rule that is not resident is a no-op.
func (t *FlowTable) Uninstall(key flow.Key) (*HWFlow, bool) {
	e, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	t.remove(e)
	t.Uninstalls++
	t.blocked = false
	return e, true
}

// Flush uninstalls every rule, invoking fn (when non-nil) with each
// removed entry — the hardware side of a datapath flow flush.
func (t *FlowTable) Flush(fn func(*HWFlow)) {
	for _, e := range t.order {
		delete(t.entries, e.Key)
		t.Uninstalls++
		if fn != nil {
			fn(e)
		}
	}
	t.order = t.order[:0]
	t.blocked = false
}

// SetCapacity reconfigures the table size, force-evicting lowest-scored
// entries (reported through fn) when shrinking below occupancy.
func (t *FlowTable) SetCapacity(n int, fn func(*HWFlow)) {
	if n < 1 {
		n = 1
	}
	t.capacity = n
	t.blocked = false
	t.evictDown(fn)
}

// Readback is the periodic driver sweep: for every entry with unreported
// hardware hits, fn receives the cookie and the delta since the previous
// sweep, and the delta becomes the entry's eviction rate. Entries that saw
// nothing have their rate decay to zero, making them evictable again.
func (t *FlowTable) Readback(fn func(cookie any, delta uint64)) {
	t.Readbacks++
	t.blocked = false
	for _, e := range t.order {
		delta := e.hits - e.hitsRead
		e.hitsRead = e.hits
		e.rate = delta
		if delta > 0 && fn != nil {
			fn(e.Cookie, delta)
		}
	}
}

// Clamp applies (n > 0) or releases (n <= 0) a fault-injected capacity
// limit — the offload-table-pressure fault. Clamping below the current
// occupancy force-evicts lowest-scored entries down to the limit,
// reporting each displaced entry through fn.
func (t *FlowTable) Clamp(n int, fn func(*HWFlow)) {
	t.clamp = n
	t.blocked = false
	t.evictDown(fn)
}

// evictDown force-evicts lowest-scored entries until occupancy fits the
// effective capacity.
func (t *FlowTable) evictDown(fn func(*HWFlow)) {
	for len(t.order) > t.EffectiveCapacity() {
		v := t.victim()
		if fn != nil {
			fn(v)
		}
		t.remove(v)
		t.Evictions++
	}
}

// victim returns the entry eviction would displace: lowest score, ties
// broken by least-recent hit. Deterministic: the scan walks order, whose
// sequence depends only on the operation history.
func (t *FlowTable) victim() *HWFlow {
	var v *HWFlow
	for _, e := range t.order {
		if v == nil || e.score() < v.score() ||
			(e.score() == v.score() && e.lastHit < v.lastHit) {
			v = e
		}
	}
	return v
}

// remove unlinks an entry: map delete plus swap-remove from order.
func (t *FlowTable) remove(e *HWFlow) {
	delete(t.entries, e.Key)
	last := len(t.order) - 1
	moved := t.order[last]
	t.order[e.slot] = moved
	moved.slot = e.slot
	t.order[last] = nil
	t.order = t.order[:last]
}

// String summarizes the table state (diagnostics).
func (t *FlowTable) String() string {
	return fmt.Sprintf("hw-flowtable{live=%d/%d installs=%d evictions=%d uninstalls=%d hits=%d readbacks=%d}",
		t.Len(), t.EffectiveCapacity(), t.Installs, t.Evictions, t.Uninstalls, t.Hits, t.Readbacks)
}
