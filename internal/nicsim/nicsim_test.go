package nicsim

import (
	"testing"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/xdp"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func udpPkt(srcPort uint16) *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(srcPort, 5000).PayloadLen(18).PadTo(64).Build())
}

func TestRSSSpreadsFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 4})
	for i := 0; i < 4000; i++ {
		nic.Receive(udpPkt(uint16(1000 + i)))
	}
	for i := 0; i < 4; i++ {
		got := nic.Queue(i).RxPackets
		if got < 600 || got > 1400 {
			t.Fatalf("queue %d has %d packets; RSS spread poor", i, got)
		}
	}
}

func TestSameFlowSameQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 4})
	for i := 0; i < 100; i++ {
		nic.Receive(udpPkt(7777))
	}
	nonEmpty := 0
	for i := 0; i < 4; i++ {
		if nic.Queue(i).RxPackets > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one flow landed on %d queues", nonEmpty)
	}
}

func TestNtupleSteeringBeatsRSS(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 4})
	if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 5000, Queue: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		nic.Receive(udpPkt(uint16(i)))
	}
	if nic.Queue(3).RxPackets != 50 {
		t.Fatalf("steering rule ignored: q3=%d", nic.Queue(3).RxPackets)
	}
	if err := nic.AddSteeringRule(SteeringRule{Queue: 99}); err == nil {
		t.Fatal("rule to invalid queue must fail")
	}
}

func TestRingOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1, RingSize: 8})
	for i := 0; i < 20; i++ {
		nic.Receive(udpPkt(1))
	}
	if nic.Queue(0).RxPackets != 8 {
		t.Fatalf("accepted %d, want 8", nic.Queue(0).RxPackets)
	}
	if nic.RxDropsTotal() != 12 {
		t.Fatalf("drops = %d, want 12", nic.RxDropsTotal())
	}
}

func TestInterruptDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1})
	fired := sim.Time(-1)
	q := nic.Queue(0)
	q.SetInterrupt(func() { fired = eng.Now() })
	q.ArmInterrupt()
	eng.Schedule(100, func() { nic.Receive(udpPkt(1)) })
	eng.Run()
	min := sim.Time(100) + costmodel.InterruptLatencyMean/2
	if fired < min || fired > min+10*costmodel.InterruptLatencyMean {
		t.Fatalf("interrupt at %v, want jittered delay >= %v", fired, min)
	}
	// Disarmed after firing: a second packet must not re-trigger.
	fired = -1
	eng.Schedule(10, func() { nic.Receive(udpPkt(1)) })
	eng.Run()
	if fired != -1 {
		t.Fatal("interrupt must stay disarmed until rearmed")
	}
}

func TestRxChecksumOffloadMarksPackets(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1, Offloads: Offloads{RxCsum: true}})
	nic.Receive(udpPkt(1))
	p := nic.Queue(0).Pop(1)[0]
	if p.Offloads&packet.CsumVerified == 0 {
		t.Fatal("RxCsum offload must mark packets verified")
	}
}

func TestRSSHashDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	withHash := New(eng, Config{Name: "a", Queues: 1, Offloads: Offloads{RSSHashDeliver: true}})
	withHash.Receive(udpPkt(1))
	if p := withHash.Queue(0).Pop(1)[0]; !p.HasRSSHash {
		t.Fatal("hash must be delivered when offload present")
	}
	// AF_XDP case: no hardware hash available (Section 5.5).
	without := New(eng, Config{Name: "b", Queues: 1})
	without.Receive(udpPkt(1))
	if p := without.Queue(0).Pop(1)[0]; p.HasRSSHash {
		t.Fatal("hash must be absent without the offload")
	}
}

func TestTransmitPacesAtLineRate(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1, LinkRate: costmodel.LinkRate10G})
	var arrivals []sim.Time
	nic.ConnectWire(func(p *packet.Packet) { arrivals = append(arrivals, eng.Now()) })
	for i := 0; i < 3; i++ {
		nic.Transmit(udpPkt(uint16(i)))
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// 64-byte frames at 10G: one every ~70ns.
	gap := arrivals[1] - arrivals[0]
	want := costmodel.TransmitTime(costmodel.LinkRate10G, 64)
	if gap != want {
		t.Fatalf("inter-frame gap %v, want %v", gap, want)
	}
}

func TestTransmitCsumOffload(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1, Offloads: Offloads{TxCsum: true}})
	var got *packet.Packet
	nic.ConnectWire(func(p *packet.Packet) { got = p })
	p := udpPkt(1)
	p.Offloads = packet.CsumPartial
	nic.Transmit(p)
	eng.Run()
	if got.Offloads&packet.CsumPartial != 0 || got.Offloads&packet.CsumVerified == 0 {
		t.Fatalf("offloads after hw csum = %v", got.Offloads)
	}
}

func TestTSOSegmentation(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1, Offloads: Offloads{TSO: true, TxCsum: true}})
	var frames []*packet.Packet
	nic.ConnectWire(func(p *packet.Packet) { frames = append(frames, p) })

	// A 16 kB TCP segment with MSS 1460.
	big := packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(1, 1, 1, 1), hdr.MakeIP4(2, 2, 2, 2), 64).
		TCPH(1, 2, 0, 0, hdr.TCPAck).PayloadLen(16000).Build())
	big.L4Offset = 34
	big.SegSize = 1460
	big.Offloads = packet.TSO | packet.CsumPartial
	nic.Transmit(big)
	eng.Run()

	want := (16000 + 1459) / 1460
	if len(frames) != want {
		t.Fatalf("segments = %d, want %d", len(frames), want)
	}
	total := 0
	for _, f := range frames {
		if f.Offloads&packet.CsumVerified == 0 {
			t.Fatal("TSO segments must carry hardware checksums")
		}
		if f.SegSize != 0 {
			t.Fatal("segments must not remain TSO-marked")
		}
		total += len(f.Data) - 54
	}
	if total != 16000 {
		t.Fatalf("payload bytes = %d, want 16000", total)
	}
}

func TestTSOWithoutHardwareNotSplit(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1}) // no TSO
	var frames []*packet.Packet
	nic.ConnectWire(func(p *packet.Packet) { frames = append(frames, p) })
	big := udpPkt(1)
	big.SegSize = 1460
	nic.Transmit(big)
	eng.Run()
	if len(frames) != 1 {
		t.Fatalf("frames = %d; software must have segmented beforehand", len(frames))
	}
}

func TestDriverReceiveXDPVerdicts(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	nic := New(eng, Config{Name: "eth0", Queues: 1})

	xskMap := ebpf.NewXskMap(4)
	if err := xskMap.SetTarget(0, 42); err != nil {
		t.Fatal(err)
	}
	prog := xdp.NewPassToXsk(xskMap)
	if err := prog.Load(); err != nil {
		t.Fatal(err)
	}
	if err := nic.Hook.Attach(prog); err != nil {
		t.Fatal(err)
	}

	var gotSock uint32
	var gotPkt *packet.Packet
	nic.Receive(udpPkt(1))
	passed, n := nic.DriverReceive(nic.Queue(0), 32, cpu, DriverVerdicts{
		ToXsk: func(s uint32, p *packet.Packet) { gotSock, gotPkt = s, p },
	})
	if n != 1 || len(passed) != 0 {
		t.Fatalf("processed=%d passed=%d", n, len(passed))
	}
	if gotSock != 42 || gotPkt == nil {
		t.Fatalf("xsk verdict: sock=%d", gotSock)
	}
	if cpu.Busy(sim.Softirq) <= costmodel.XDPDriverOverhead {
		t.Fatal("driver + program cost must be charged to softirq")
	}
}

func TestDriverReceiveNoProgramPasses(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	nic := New(eng, Config{Name: "eth0", Queues: 1})
	nic.Receive(udpPkt(1))
	passed, _ := nic.DriverReceive(nic.Queue(0), 32, cpu, DriverVerdicts{})
	if len(passed) != 1 {
		t.Fatalf("passed = %d", len(passed))
	}
}

func TestDriverReceiveTxVerdict(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	nic := New(eng, Config{Name: "eth0", Queues: 1})
	prog := xdp.NewParseSwapForward()
	if err := prog.Load(); err != nil {
		t.Fatal(err)
	}
	if err := nic.Hook.Attach(prog); err != nil {
		t.Fatal(err)
	}
	var txd *packet.Packet
	nic.Receive(udpPkt(1))
	nic.DriverReceive(nic.Queue(0), 32, cpu, DriverVerdicts{
		Tx: func(p *packet.Packet) { txd = p },
	})
	if txd == nil {
		t.Fatal("XDP_TX verdict not delivered")
	}
	eth, _ := hdr.ParseEthernet(txd.Data)
	if eth.Dst != macA {
		t.Fatal("task D must have swapped MACs in place")
	}
}

func TestWireConnectsTwoNICs(t *testing.T) {
	eng := sim.NewEngine(1)
	a := New(eng, Config{Name: "a", Queues: 1})
	b := New(eng, Config{Name: "b", Queues: 1})
	a.ConnectWire(func(p *packet.Packet) { b.Receive(p) })
	b.ConnectWire(func(p *packet.Packet) { a.Receive(p) })
	a.Transmit(udpPkt(9))
	eng.Run()
	if b.Queue(0).RxPackets != 1 {
		t.Fatal("frame did not cross the wire")
	}
}
