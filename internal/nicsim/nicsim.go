// Package nicsim models the physical NICs of the paper's testbeds: Intel
// X540 10 GbE (Section 5.1) and Mellanox ConnectX-6 25 GbE (Section 5.2).
//
// A NIC has multiple receive queues fed by RSS hashing or hardware ntuple
// steering rules (ethtool --config-ntuple, Figure 6b), bounded descriptor
// rings whose overflow is packet loss, per-queue interrupt signalling for
// interrupt-driven consumers, an XDP hook executed at the driver level, and
// hardware offloads (checksum, TSO) that the AF_XDP path conspicuously
// lacks (Table 2's O5, Section 5.5).
//
// The NIC is passive on the receive side: consumers (the kernel stack, a
// PMD thread, a DPDK driver) poll queues or arm interrupts. The transmit
// side paces frames at line rate and hands them to the attached wire.
package nicsim

import (
	"fmt"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/xdp"
)

// DefaultRingDepth is the hardware descriptor ring depth per queue.
const DefaultRingDepth = 1024

// Offloads describes the hardware assists a NIC provides.
type Offloads struct {
	// RxCsum: the NIC validates L3/L4 checksums on receive and marks
	// packets CsumVerified.
	RxCsum bool
	// TxCsum: the NIC fills in checksums marked CsumPartial on transmit.
	TxCsum bool
	// TSO: the NIC segments oversized TCP packets on transmit.
	TSO bool
	// RSSHashDeliver: the NIC delivers its computed RSS hash to the
	// consumer (kernels get this via the descriptor; AF_XDP cannot
	// access it yet, Section 5.5).
	RSSHashDeliver bool
}

// SteeringRule is one hardware ntuple flow-steering rule (Figure 6b):
// packets matching the 5-tuple constraints go to Queue.
type SteeringRule struct {
	Proto   hdr.IPProto // 0 matches any
	DstPort uint16      // 0 matches any
	Queue   int
}

// MaxSteeringRules bounds the ntuple rule memory, as real filter tables do
// (ethtool -u reports the size); appends past it are errors, not silent
// growth.
const MaxSteeringRules = 1024

// ntupleKey indexes a fully-specified steering rule for O(1) dispatch.
type ntupleKey struct {
	proto hdr.IPProto
	port  uint16
}

// steeringEntry is an installed rule plus its insertion sequence, which
// preserves evaluate-in-insertion-order semantics across the exact index
// and the wildcard list.
type steeringEntry struct {
	rule SteeringRule
	seq  int
}

// Queue is one hardware receive queue.
type Queue struct {
	ID int

	// ring is consumed from head and appended at the tail; when fully
	// drained both reset, so the backing array is reused indefinitely.
	ring     []*packet.Packet
	head     int
	depth    int
	irqFn    func()
	irqArmed bool

	// scratch is the reusable slice returned by Pop. Callers consume it
	// synchronously (single-threaded simulation) and must not retain it
	// across events.
	scratch []*packet.Packet

	// Stats.
	RxPackets uint64
	RxDrops   uint64
}

// Len returns the number of packets waiting in the queue.
func (q *Queue) Len() int { return len(q.ring) - q.head }

// Pop removes up to max packets. The returned slice is reused by the next
// Pop; callers must finish with it before yielding to the engine.
func (q *Queue) Pop(max int) []*packet.Packet {
	n := max
	if avail := len(q.ring) - q.head; n > avail {
		n = avail
	}
	if n == 0 {
		return nil
	}
	q.scratch = append(q.scratch[:0], q.ring[q.head:q.head+n]...)
	for i := q.head; i < q.head+n; i++ {
		q.ring[i] = nil
	}
	q.head += n
	if q.head == len(q.ring) {
		q.ring = q.ring[:0]
		q.head = 0
	}
	return q.scratch
}

// SetInterrupt installs the interrupt handler; arming is separate so NAPI
// consumers can disable interrupts while polling.
func (q *Queue) SetInterrupt(fn func()) { q.irqFn = fn }

// ArmInterrupt enables interrupt delivery for the next packet arrival.
func (q *Queue) ArmInterrupt() { q.irqArmed = true }

// DisarmInterrupt disables interrupt delivery (NAPI poll mode).
func (q *Queue) DisarmInterrupt() { q.irqArmed = false }

// NIC is one simulated network interface.
type NIC struct {
	Name    string
	Ifindex uint32
	// LinkRate is the port speed in bits/s.
	LinkRate int64
	// Offloads are the hardware assists available.
	Offloads Offloads
	// Hook is the XDP attachment point, executed by the driver's
	// receive path when a consumer calls DriverReceive.
	Hook *xdp.Hook

	eng      *sim.Engine
	queues   []*Queue
	rssBasis uint32
	// ntupleExact indexes fully-specified (proto, port) rules by tuple
	// hash — O(1) per packet however many rules are installed. Rules with
	// a wildcard field stay in ntupleWild, scanned in insertion order;
	// ntupleSeq numbers installs so first-match semantics hold across
	// both structures.
	ntupleExact map[ntupleKey]steeringEntry
	ntupleWild  []steeringEntry
	ntupleSeq   int
	// rssTable is the RSS indirection table (ethtool -X): the hash
	// selects a slot, the slot names the queue. nil keeps the identity
	// spread hash%queues — provably the same mapping as a table with
	// table[i] = i, so configuring nothing changes nothing.
	rssTable []int

	// wire receives transmitted packets (after serialization delay);
	// wireArg is the same callback in ScheduleArg form, bound once so
	// per-frame delivery scheduling does not allocate a closure.
	wire    func(*packet.Packet)
	wireArg func(any)
	// txFreeAt paces the transmit side at line rate.
	txFreeAt sim.Time

	// linkDown models a carrier-loss fault window: while set, frames are
	// dropped at the PHY in both directions, as a real NIC does during a
	// link flap.
	linkDown bool

	// Stats.
	TxPackets uint64
	TxBytes   uint64
	// LinkDownRx / LinkDownTx count frames dropped while the link was down.
	LinkDownRx uint64
	LinkDownTx uint64
}

// Config parameterizes New.
type Config struct {
	Name     string
	Ifindex  uint32
	Queues   int
	RingSize int
	LinkRate int64
	Offloads Offloads
	// AttachModel selects the Figure 6 XDP attachment style; the zero
	// value is the Intel all-queues model.
	AttachModel xdp.AttachModel
	// XDPMode is the driver (native) or generic (skb) execution mode.
	XDPMode xdp.Mode
}

// New builds a NIC on the engine.
func New(eng *sim.Engine, cfg Config) *NIC {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingDepth
	}
	if cfg.LinkRate == 0 {
		cfg.LinkRate = costmodel.LinkRate10G
	}
	n := &NIC{
		Name:     cfg.Name,
		Ifindex:  cfg.Ifindex,
		LinkRate: cfg.LinkRate,
		Offloads: cfg.Offloads,
		Hook:     xdp.NewHook(cfg.AttachModel, cfg.XDPMode),
		eng:      eng,
		rssBasis: uint32(cfg.Ifindex)*0x9e37 + 0x79b9,
	}
	for i := 0; i < cfg.Queues; i++ {
		n.queues = append(n.queues, &Queue{ID: i, depth: cfg.RingSize})
	}
	return n
}

// NumQueues returns the receive queue count.
func (n *NIC) NumQueues() int { return len(n.queues) }

// Queue returns queue i.
func (n *NIC) Queue(i int) *Queue { return n.queues[i] }

// AddSteeringRule installs a hardware ntuple rule; rules are evaluated in
// insertion order before RSS. A rule whose match tuple duplicates an
// installed rule is rejected (hardware filter slots hold one rule per
// tuple), as is a rule past the table bound or targeting a queue the NIC
// does not have.
func (n *NIC) AddSteeringRule(r SteeringRule) error {
	if r.Queue < 0 || r.Queue >= len(n.queues) {
		return fmt.Errorf("nicsim: steering rule targets queue %d of %d", r.Queue, len(n.queues))
	}
	if n.steeringRules() >= MaxSteeringRules {
		return fmt.Errorf("nicsim: steering rule table full (%d rules)", MaxSteeringRules)
	}
	if _, ok := n.findSteeringRule(r.Proto, r.DstPort); ok {
		return fmt.Errorf("nicsim: duplicate steering rule for proto=%d dst-port=%d", r.Proto, r.DstPort)
	}
	e := steeringEntry{rule: r, seq: n.ntupleSeq}
	n.ntupleSeq++
	if r.Proto != 0 && r.DstPort != 0 {
		if n.ntupleExact == nil {
			n.ntupleExact = make(map[ntupleKey]steeringEntry)
		}
		n.ntupleExact[ntupleKey{r.Proto, r.DstPort}] = e
	} else {
		n.ntupleWild = append(n.ntupleWild, e)
	}
	return nil
}

// RemoveSteeringRule deletes the installed rule with the given match tuple
// (the ethtool --config-ntuple delete analog); removal is by match, so the
// Queue field is ignored. Removing a rule that is not installed is an
// error.
func (n *NIC) RemoveSteeringRule(proto hdr.IPProto, dstPort uint16) error {
	if proto != 0 && dstPort != 0 {
		if _, ok := n.ntupleExact[ntupleKey{proto, dstPort}]; !ok {
			return fmt.Errorf("nicsim: no steering rule for proto=%d dst-port=%d", proto, dstPort)
		}
		delete(n.ntupleExact, ntupleKey{proto, dstPort})
		return nil
	}
	for i, e := range n.ntupleWild {
		if e.rule.Proto == proto && e.rule.DstPort == dstPort {
			n.ntupleWild = append(n.ntupleWild[:i], n.ntupleWild[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("nicsim: no steering rule for proto=%d dst-port=%d", proto, dstPort)
}

// steeringRules counts installed ntuple rules.
func (n *NIC) steeringRules() int { return len(n.ntupleExact) + len(n.ntupleWild) }

// findSteeringRule locates an installed rule by its exact match tuple.
func (n *NIC) findSteeringRule(proto hdr.IPProto, dstPort uint16) (SteeringRule, bool) {
	if proto != 0 && dstPort != 0 {
		if e, ok := n.ntupleExact[ntupleKey{proto, dstPort}]; ok {
			return e.rule, true
		}
		return SteeringRule{}, false
	}
	for _, e := range n.ntupleWild {
		if e.rule.Proto == proto && e.rule.DstPort == dstPort {
			return e.rule, true
		}
	}
	return SteeringRule{}, false
}

// ConnectWire attaches the function that receives transmitted packets (the
// other end of the cable, a switch port, or a test sink).
func (n *NIC) ConnectWire(fn func(*packet.Packet)) {
	n.wire = fn
	n.wireArg = func(a any) { fn(a.(*packet.Packet)) }
}

// classify picks the receive queue for a packet: ntuple rules first, then
// RSS on the 5-tuple. Hardware does this work, so no CPU cost is charged;
// the RSS hash is stored in the packet metadata when the NIC supports
// delivering it.
func (n *NIC) classify(p *packet.Packet) *Queue {
	key := flow.Extract(p)
	if n.steeringRules() > 0 {
		f := key.Unpack()
		// The fully-specified rule, if any, in one map probe; then the
		// wildcard list in insertion order, stopping once no wildcard rule
		// can predate the exact match. First match (lowest sequence) wins,
		// exactly as the linear scan over a single list did.
		bestSeq := -1
		bestQueue := 0
		if e, ok := n.ntupleExact[ntupleKey{f.IPProto, f.TPDst}]; ok {
			bestSeq, bestQueue = e.seq, e.rule.Queue
		}
		for _, e := range n.ntupleWild {
			if bestSeq >= 0 && e.seq > bestSeq {
				break
			}
			if e.rule.Proto != 0 && e.rule.Proto != f.IPProto {
				continue
			}
			if e.rule.DstPort != 0 && e.rule.DstPort != f.TPDst {
				continue
			}
			bestSeq, bestQueue = e.seq, e.rule.Queue
			break
		}
		if bestSeq >= 0 {
			return n.queues[bestQueue]
		}
	}
	h := flow.RSSHash(key)
	if n.Offloads.RSSHashDeliver {
		p.RSSHash = h
		p.HasRSSHash = true
	}
	if len(n.rssTable) > 0 {
		return n.queues[n.rssTable[h%uint32(len(n.rssTable))]]
	}
	return n.queues[h%uint32(len(n.queues))]
}

// SetRSSIndirection programs the RSS indirection table (the ethtool -X
// analog): the packet hash selects table[hash % len], which names the
// receive queue. Weighted tables skew traffic across queues — how the
// scaling experiments produce deterministic hot and cold queues. A nil or
// empty table restores the identity spread. Entries must name existing
// queues.
func (n *NIC) SetRSSIndirection(table []int) error {
	for _, q := range table {
		if q < 0 || q >= len(n.queues) {
			return fmt.Errorf("nicsim %s: indirection entry %d out of range (have %d queues)",
				n.Name, q, len(n.queues))
		}
	}
	n.rssTable = append([]int(nil), table...)
	return nil
}

// WeightedIndirection builds an indirection table spreading slots across
// queues proportionally to the given weights (one per queue). A queue with
// weight 0 receives no traffic. The table has one slot per weight unit, so
// small integer weights keep it compact and exact.
func WeightedIndirection(weights []int) []int {
	var table []int
	for q, w := range weights {
		for i := 0; i < w; i++ {
			table = append(table, q)
		}
	}
	return table
}

// SetLink raises or drops the carrier (fault injection: a link flap).
// While down, Receive and Transmit drop every frame and count it.
func (n *NIC) SetLink(up bool) { n.linkDown = !up }

// LinkUp reports whether the carrier is present.
func (n *NIC) LinkUp() bool { return !n.linkDown }

// Receive is the wire-side ingress: DMA the packet into its queue's ring,
// dropping on overflow, and raise the queue's interrupt if armed.
func (n *NIC) Receive(p *packet.Packet) bool {
	if n.linkDown {
		n.LinkDownRx++
		p.Release()
		return false
	}
	if n.Offloads.RxCsum {
		p.Offloads |= packet.CsumVerified
	}
	q := n.classify(p)
	if q.Len() >= q.depth {
		q.RxDrops++
		p.Release()
		return false
	}
	q.ring = append(q.ring, p)
	q.RxPackets++
	if q.irqArmed && q.irqFn != nil {
		q.irqArmed = false
		fn := q.irqFn
		// Interrupt moderation delay: adaptive coalescing makes this
		// jittery (half fixed, half exponential), which is where the
		// kernel path's latency tail in Figure 10 comes from.
		base := costmodel.InterruptLatencyMean / 2
		jitter := sim.Time(n.eng.Rand().Exp(float64(base)))
		n.eng.Schedule(base+jitter, fn)
	}
	return true
}

// DriverReceive runs the XDP stage on packets popped from a queue, on
// behalf of the softirq-context consumer. For each packet it charges the
// driver overhead plus program cost to cpu and invokes the verdict
// callbacks. Packets with XDP_PASS verdicts (or no program) are returned
// for delivery up the stack.
type DriverVerdicts struct {
	// ToXsk receives packets redirected into an AF_XDP socket, with the
	// xskmap value (socket id).
	ToXsk func(sock uint32, p *packet.Packet)
	// ToDev receives packets redirected to another device (devmap
	// ifindex target).
	ToDev func(ifindex uint32, p *packet.Packet)
	// Tx transmits the (possibly rewritten) packet back out this NIC.
	Tx func(p *packet.Packet)
}

// DriverReceive processes up to max packets from queue q through the XDP
// hook, charging costs to cpu in softirq context. It returns the packets
// that passed to the stack and the count processed.
func (n *NIC) DriverReceive(q *Queue, max int, cpu *sim.CPU, v DriverVerdicts) (passed []*packet.Packet, processed int) {
	pkts := q.Pop(max)
	for _, p := range pkts {
		cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead)
		if !n.Hook.HasProgram() {
			passed = append(passed, p)
			continue
		}
		res, cost, err := n.Hook.Run(q.ID, p.Data, n.Ifindex)
		cpu.Consume(sim.Softirq, cost)
		if err != nil {
			// A faulting program drops the packet (XDP_ABORTED).
			continue
		}
		switch res.Action {
		case 2: // XDP_PASS
			passed = append(passed, p)
		case 3: // XDP_TX
			cpu.Consume(sim.Softirq, costmodel.XDPTxForward)
			if v.Tx != nil {
				v.Tx(p)
			}
		case 4: // XDP_REDIRECT
			target, _ := res.RedirectMap.(interface {
				Target(uint32) (uint32, bool)
			})
			if target == nil {
				continue
			}
			tgt, ok := target.Target(res.RedirectIndex)
			if !ok {
				continue
			}
			if res.RedirectMap.Type().String() == "xskmap" {
				if v.ToXsk != nil {
					v.ToXsk(tgt, p)
				}
			} else {
				cpu.Consume(sim.Softirq, costmodel.XDPRedirectVeth)
				if v.ToDev != nil {
					v.ToDev(tgt, p)
				}
			}
		default: // XDP_DROP / XDP_ABORTED
		}
	}
	return passed, len(pkts)
}

// Transmit serializes the packet onto the wire at line rate, applying
// transmit-side offloads. TSO packets are split into MSS-sized frames here
// when the hardware supports it; callers without TSO hardware must segment
// in software before calling (and pay that cost themselves). The packet
// arrives at the wire peer after serialization plus propagation delay.
func (n *NIC) Transmit(p *packet.Packet) {
	if n.linkDown {
		n.LinkDownTx++
		p.Release()
		return
	}
	if p.Offloads&packet.CsumPartial != 0 && n.Offloads.TxCsum {
		// Hardware fills the checksum: free for the CPU.
		p.Offloads &^= packet.CsumPartial
		p.Offloads |= packet.CsumVerified
	}
	if p.SegSize > 0 && n.Offloads.TSO && len(p.Data) > p.SegSize {
		for _, seg := range segment(p) {
			n.transmitFrame(seg)
		}
		return
	}
	n.transmitFrame(p)
}

func (n *NIC) transmitFrame(p *packet.Packet) {
	n.TxPackets++
	n.TxBytes += uint64(len(p.Data))
	ser := costmodel.TransmitTime(n.LinkRate, len(p.Data))
	start := n.txFreeAt
	if now := n.eng.Now(); start < now {
		start = now
	}
	n.txFreeAt = start + ser
	if n.wire == nil {
		p.Release()
		return
	}
	n.eng.ScheduleArgAt(n.txFreeAt+costmodel.WireAndNIC, n.wireArg, p)
}

// segment splits a TSO packet into SegSize-sized frames. Header bytes
// through the end of the transport header are replicated onto each segment;
// the split frames inherit verified-checksum state because the hardware
// computes per-segment checksums as part of TSO.
func segment(p *packet.Packet) []*packet.Packet {
	hdrLen := 54 // eth + ipv4 + minimal tcp, when offsets are unknown
	if p.L4Offset > 0 && p.L4Offset+hdr.TCPMinSize <= len(p.Data) {
		dataOff := int(p.Data[p.L4Offset+12]>>4) * 4
		if dataOff < hdr.TCPMinSize {
			dataOff = hdr.TCPMinSize
		}
		hdrLen = p.L4Offset + dataOff
	}
	if hdrLen > len(p.Data) {
		hdrLen = len(p.Data)
	}
	payload := p.Data[hdrLen:]
	var out []*packet.Packet
	for off := 0; off < len(payload); off += p.SegSize {
		end := off + p.SegSize
		if end > len(payload) {
			end = len(payload)
		}
		data := make([]byte, hdrLen+end-off)
		copy(data, p.Data[:hdrLen])
		copy(data[hdrLen:], payload[off:end])
		seg := packet.New(data)
		seg.Metadata = p.Metadata
		seg.SegSize = 0
		seg.Offloads &^= packet.CsumPartial | packet.TSO
		seg.Offloads |= packet.CsumVerified
		out = append(out, seg)
	}
	if len(out) == 0 {
		out = append(out, p)
	}
	return out
}

// RxDropsTotal sums drops across queues.
func (n *NIC) RxDropsTotal() uint64 {
	var d uint64
	for _, q := range n.queues {
		d += q.RxDrops
	}
	return d
}

// RxPacketsTotal sums received packets across queues.
func (n *NIC) RxPacketsTotal() uint64 {
	var d uint64
	for _, q := range n.queues {
		d += q.RxPackets
	}
	return d
}
