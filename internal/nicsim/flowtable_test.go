package nicsim

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

func fkey(i int) flow.Key { return flow.Key{uint64(i) + 1} }

// ledger asserts the conservation invariant at any point in a table's life.
func ledger(t *testing.T, tbl *FlowTable) {
	t.Helper()
	if tbl.Installs != tbl.Evictions+tbl.Uninstalls+uint64(tbl.Len()) {
		t.Fatalf("ledger broken: installs=%d evictions=%d uninstalls=%d live=%d",
			tbl.Installs, tbl.Evictions, tbl.Uninstalls, tbl.Len())
	}
}

func TestFlowTableInstallLookup(t *testing.T) {
	tbl := NewFlowTable(4)
	if _, ok := tbl.Install(fkey(1), "a"); !ok {
		t.Fatal("install into empty table refused")
	}
	c, ok := tbl.Lookup(fkey(1))
	if !ok || c.(string) != "a" {
		t.Fatalf("lookup = %v, %v", c, ok)
	}
	if tbl.Hits != 1 {
		t.Fatalf("hits = %d", tbl.Hits)
	}
	// Replacement updates the cookie in place, no ledger movement.
	if _, ok := tbl.Install(fkey(1), "b"); !ok {
		t.Fatal("in-place replace refused")
	}
	if c, _ := tbl.Lookup(fkey(1)); c.(string) != "b" {
		t.Fatal("cookie not replaced in place")
	}
	if tbl.Installs != 1 || tbl.Len() != 1 {
		t.Fatalf("replace moved the ledger: installs=%d live=%d", tbl.Installs, tbl.Len())
	}
	if _, ok := tbl.Lookup(fkey(2)); ok {
		t.Fatal("phantom hit")
	}
	ledger(t, tbl)
}

func TestFlowTableEvictsLowestRate(t *testing.T) {
	tbl := NewFlowTable(2)
	tbl.Install(fkey(1), 1)
	tbl.Install(fkey(2), 2)
	// Key 1 is hot, key 2 idle; after readback the rates differ.
	for i := 0; i < 5; i++ {
		tbl.Lookup(fkey(1))
	}
	tbl.Readback(nil)
	tbl.Readback(nil) // second sweep: key 1 rate decays to 0 too, but...
	tbl.Lookup(fkey(1))
	// ...key 1 has fresh unreported hits, so key 2 is the victim.
	evicted, ok := tbl.Install(fkey(3), 3)
	if !ok || evicted == nil {
		t.Fatalf("install = %v, %v; want eviction", evicted, ok)
	}
	if evicted.Key != fkey(2) {
		t.Fatalf("evicted %v, want idle key 2", evicted.Key)
	}
	ledger(t, tbl)
}

func TestFlowTableLRUTiebreak(t *testing.T) {
	tbl := NewFlowTable(2)
	tbl.Install(fkey(1), 1)
	tbl.Install(fkey(2), 2)
	tbl.Lookup(fkey(2))
	tbl.Lookup(fkey(1))
	tbl.Readback(nil) // both rates equalize... no: 1 and 1, equal scores
	// Equal scores (both rate 1, no fresh hits): least-recently-hit loses.
	evicted, ok := tbl.Install(fkey(3), 3)
	if ok || evicted != nil {
		// All residents carry nonzero rate: admission control refuses.
		t.Fatalf("install through active residents: evicted=%v ok=%v", evicted, ok)
	}
	tbl.Readback(nil) // rates decay to zero, scores tie at 0
	evicted, ok = tbl.Install(fkey(3), 3)
	if !ok || evicted == nil || evicted.Key != fkey(2) {
		t.Fatalf("LRU tiebreak evicted %v, want key 2 (hit earliest)", evicted)
	}
	ledger(t, tbl)
}

func TestFlowTableAdmissionControlBlocks(t *testing.T) {
	tbl := NewFlowTable(2)
	tbl.Install(fkey(1), 1)
	tbl.Install(fkey(2), 2)
	tbl.Lookup(fkey(1))
	tbl.Lookup(fkey(2))
	// Both residents active: every install attempt is refused, and after
	// the first refusal the blocked flag short-circuits.
	for i := 0; i < 3; i++ {
		if _, ok := tbl.Install(fkey(3+i), i); ok {
			t.Fatal("install displaced an active resident")
		}
	}
	if tbl.Refused != 3 {
		t.Fatalf("refused = %d, want 3", tbl.Refused)
	}
	// Readback clears the block; with rates decayed the next install wins.
	tbl.Readback(nil)
	tbl.Readback(nil)
	if _, ok := tbl.Install(fkey(9), 9); !ok {
		t.Fatal("install refused after rates decayed")
	}
	ledger(t, tbl)
}

func TestFlowTableReadbackDeltas(t *testing.T) {
	tbl := NewFlowTable(4)
	tbl.Install(fkey(1), "a")
	tbl.Install(fkey(2), "b")
	for i := 0; i < 7; i++ {
		tbl.Lookup(fkey(1))
	}
	got := map[any]uint64{}
	tbl.Readback(func(cookie any, delta uint64) { got[cookie] = delta })
	if len(got) != 1 || got["a"] != 7 {
		t.Fatalf("readback deltas = %v, want only a:7", got)
	}
	// Second sweep: nothing new to report.
	got = map[any]uint64{}
	tbl.Readback(func(cookie any, delta uint64) { got[cookie] = delta })
	if len(got) != 0 {
		t.Fatalf("second readback reported %v", got)
	}
	if tbl.Readbacks != 2 {
		t.Fatalf("readbacks = %d", tbl.Readbacks)
	}
}

func TestFlowTableUninstallAndFlush(t *testing.T) {
	tbl := NewFlowTable(4)
	for i := 0; i < 4; i++ {
		tbl.Install(fkey(i), i)
	}
	if hw, ok := tbl.Uninstall(fkey(2)); !ok || hw.Cookie.(int) != 2 {
		t.Fatalf("uninstall = %v, %v", hw, ok)
	}
	if _, ok := tbl.Uninstall(fkey(2)); ok {
		t.Fatal("double uninstall succeeded")
	}
	var flushed []int
	tbl.Flush(func(hw *HWFlow) { flushed = append(flushed, hw.Cookie.(int)) })
	if len(flushed) != 3 || tbl.Len() != 0 {
		t.Fatalf("flush dropped %d entries, live=%d", len(flushed), tbl.Len())
	}
	if tbl.Uninstalls != 4 {
		t.Fatalf("uninstalls = %d, want 4", tbl.Uninstalls)
	}
	ledger(t, tbl)
}

func TestFlowTableClampForcesEvictions(t *testing.T) {
	tbl := NewFlowTable(8)
	for i := 0; i < 8; i++ {
		tbl.Install(fkey(i), i)
	}
	var out []*HWFlow
	tbl.Clamp(3, func(hw *HWFlow) { out = append(out, hw) })
	if len(out) != 5 || tbl.Len() != 3 {
		t.Fatalf("clamp evicted %d, live=%d", len(out), tbl.Len())
	}
	if tbl.EffectiveCapacity() != 3 {
		t.Fatalf("effective capacity = %d", tbl.EffectiveCapacity())
	}
	// Release: capacity restored, nothing evicted.
	tbl.Clamp(0, nil)
	if tbl.EffectiveCapacity() != 8 {
		t.Fatalf("capacity after release = %d", tbl.EffectiveCapacity())
	}
	ledger(t, tbl)
}

func TestFlowTableDeterministicVictims(t *testing.T) {
	// Same operation sequence twice: the eviction order must be identical
	// (the victim scan walks the order slice, never a Go map).
	run := func() []flow.Key {
		tbl := NewFlowTable(8)
		for i := 0; i < 8; i++ {
			tbl.Install(fkey(i), i)
			tbl.Lookup(fkey(i))
		}
		tbl.Readback(nil)
		tbl.Readback(nil)
		var order []flow.Key
		for i := 8; i < 16; i++ {
			ev, ok := tbl.Install(fkey(i), i)
			if !ok || ev == nil {
				break
			}
			order = append(order, ev.Key)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("eviction runs diverge in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSteeringRuleRemoveAndDuplicate(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 4})
	if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 5000, Queue: 3}); err != nil {
		t.Fatal(err)
	}
	// Duplicate match tuple (even to another queue) is rejected.
	if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 5000, Queue: 1}); err == nil {
		t.Fatal("duplicate steering rule accepted")
	}
	if err := nic.RemoveSteeringRule(hdr.IPProtoUDP, 5000); err != nil {
		t.Fatal(err)
	}
	// Removed: the flow falls back to RSS, and removal is not idempotent.
	if err := nic.RemoveSteeringRule(hdr.IPProtoUDP, 5000); err == nil {
		t.Fatal("removing an absent rule must fail")
	}
	for i := 0; i < 40; i++ {
		nic.Receive(udpPkt(uint16(1000 + i)))
	}
	if nic.Queue(3).RxPackets == 40 {
		t.Fatal("removed rule still steering")
	}
}

func TestSteeringRuleWildcardPrecedence(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 4})
	// First-match-wins over insertion order, exact and wildcard mixed: the
	// earlier wildcard (proto-only) rule must beat the later exact rule.
	if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, Queue: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 5000, Queue: 2}); err != nil {
		t.Fatal(err)
	}
	nic.Receive(udpPkt(7))
	if nic.Queue(1).RxPackets != 1 || nic.Queue(2).RxPackets != 0 {
		t.Fatalf("q1=%d q2=%d; earlier wildcard rule must win",
			nic.Queue(1).RxPackets, nic.Queue(2).RxPackets)
	}
	// Reversed order on a fresh NIC: the exact rule wins.
	nic2 := New(eng, Config{Name: "eth1", Queues: 4})
	nic2.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 5000, Queue: 2})
	nic2.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, Queue: 1})
	nic2.Receive(udpPkt(7))
	if nic2.Queue(2).RxPackets != 1 {
		t.Fatal("exact rule inserted first must win")
	}
}

func TestSteeringRuleTableBound(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 1})
	for i := 0; i < MaxSteeringRules; i++ {
		if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoTCP, DstPort: uint16(i + 1), Queue: 0}); err != nil {
			t.Fatalf("rule %d rejected: %v", i, err)
		}
	}
	if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 9, Queue: 0}); err == nil {
		t.Fatal("rule table bound not enforced")
	}
}

// BenchmarkClassifySteering is the satellite-1 regression gate: with the
// exact-match rules indexed by tuple hash, rxq classification must stay
// O(1) and allocation-free however many rules are installed.
func BenchmarkClassifySteering(b *testing.B) {
	eng := sim.NewEngine(1)
	nic := New(eng, Config{Name: "eth0", Queues: 4, RingSize: 1 << 20})
	for i := 0; i < MaxSteeringRules; i++ {
		if err := nic.AddSteeringRule(SteeringRule{Proto: hdr.IPProtoTCP, DstPort: uint16(i + 1), Queue: i % 4}); err != nil {
			b.Fatal(err)
		}
	}
	p := udpPkt(4242)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nic.classify(p)
	}
}
